//! `m3-fleet`: a pressure-aware cluster scheduler on top of the node
//! simulator.
//!
//! The paper's cluster (§7.1) is N independent workers all running the same
//! schedule; every placement decision is implicit. This module lifts M3's
//! node-local pressure signals to the cluster layer: incoming elastic jobs
//! are *placed* onto the least-pressured feasible node, *deferred* when no
//! node can take them without being pushed above its top of memory, and
//! *migrated* off a node whose monitor stays in the red zone beyond a grace
//! window (the direction MURS/SARA argue service stacks must go).
//!
//! # Scaling model (DESIGN.md §13)
//!
//! The scheduler targets O(10k) nodes and O(100k) jobs on one machine, so
//! every per-decision cost must be bounded and every node simulation must
//! be shared when it can be:
//!
//! - **Incremental probes.** A node's probe simulation runs once over the
//!   full horizon with a pressure timeline sampled at every monitor poll,
//!   and is cached on the node ([`NodeState::probe`]) until the node's
//!   assignment set or fault plan changes (the *dirty* rule: any mutation
//!   clears the cache). Reading the node's state at time `t` is then a
//!   timeline lookup, not a re-simulation. Idle nodes never simulate at
//!   all: a per-size summary precomputed at fleet construction answers
//!   their probes.
//! - **Content-addressed node runs.** In scheduler mode the per-node
//!   machine config carries no node salt and the sub-scenario name carries
//!   no node index, so two nodes with identical (size, schedule, faults)
//!   share one entry in the process-wide run cache. Wave-shaped arrivals
//!   over homogeneous nodes collapse thousands of node simulations into a
//!   handful of distinct ones.
//! - **Sharded placement.** Nodes are partitioned into shards of
//!   [`FleetConfig::shard_size`]; each shard keeps a `BTreeSet` candidate
//!   index ordered by an *advisory* effective-load key. Placement k-way
//!   merges the shard indexes into the globally least-estimated
//!   [`FleetConfig::probe_budget`] nodes and probes those (stopping early
//!   once [`FleetConfig::place_candidates`] feasible candidates are in
//!   hand) instead of probing all N. The index only orders the scan — admission is
//!   always decided by authoritative probes — and a job's *final* admission
//!   attempt scans every node, so a job is never given up on while a
//!   feasible node exists anywhere in the fleet.
//! - **Batched pressure refresh.** Each rebalance check refreshes
//!   [`FleetConfig::refresh_shards`] shards round-robin rather than the
//!   whole fleet, and pre-warms the dirty nodes' simulations on the
//!   worker pool ([`crate::parallel::parallel_map`]) before reading them
//!   serially in node order.
//!
//! # Determinism
//!
//! The scheduler is a pure function of `(scenario, setting, machine_cfg,
//! fleet_cfg)`. There is no randomness and no wall clock anywhere:
//!
//! - Scheduler events live in a `BTreeMap` keyed `(time_ms, class, index)`,
//!   so they pop in a total order.
//! - A node's pressure at time `t` is a pure function of its assignment
//!   set and fault plan: the cached probe simulation is deterministic, and
//!   the timeline read picks the last sample at or before `t`.
//! - Parallel pre-warm only *populates* caches with values that are pure
//!   functions of their keys; every decision reads them in index order, so
//!   the result is bit-identical for any worker count (`M3_JOBS`).
//! - Ties in the placement order are broken by node index; admission is an
//!   exact integer comparison (no float ordering).
//!
//! Migration is modelled as a crash fault on the source node (the elastic
//! job restarts from scratch on the target, as §7.1's restartable jobs do).
//! The crash instant always equals the scheduler's current time, so probes
//! cached for earlier times stay valid.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::sync::Arc;

use m3_core::config::MonitorConfig;
use m3_core::monitor::{Monitor, PressureSummary, Zone};
use m3_oracle::{FleetOracle, Violation};
use m3_sim::clock::{SimDuration, SimTime};
use m3_sim::trace::{Criticality, TraceData, TraceLog, TraceZone};
use m3_sim::units::GIB;
use m3_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::cluster::{run_cluster_nodes, ClusterResult, JobFailure};
use crate::faults::{FaultPlan, FleetDegradationReport, FleetFaultPlan, ProbeFlap};
use crate::hibench;
use crate::machine::MachineConfig;
use crate::parallel::{run_scenario_cached_faulted, CacheStats, MemoCache};
use crate::runner::ScenarioOutcome;
use crate::scenario::{AppKind, Scenario};
use crate::settings::Setting;

/// One worker node of the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Physical memory of the node.
    pub phys_total: u64,
}

impl NodeSpec {
    /// The paper's 64-GB worker.
    pub fn paper() -> Self {
        NodeSpec {
            phys_total: 64 * GIB,
        }
    }
}

/// Which feasible node the placer prefers. The two non-default variants
/// are deliberately broken — they exist so the invariant tests can catch a
/// misbehaving policy end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Place on the feasible node with the lowest `used / top` ratio
    /// (ties broken by lower node index).
    LeastPressured,
    /// Place on the *highest* `used / top` node, feasible or not — a
    /// broken policy that skips admission control (used by the
    /// rebalancing tests to force co-location).
    MostPressured,
    /// Place every job on node 0 without probing anything — a broken
    /// policy the oracle catches as a placement without a pressure
    /// snapshot.
    Blind,
}

/// Fleet scheduler configuration. Part of the fleet-level memoization key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// The worker nodes (heterogeneous sizes allowed).
    pub nodes: Vec<NodeSpec>,
    /// `false` runs every node through the legacy [`run_cluster_nodes`]
    /// path (each node runs the whole schedule; no placement decisions) —
    /// the backward-compat mode the figure benches rely on.
    pub scheduler: bool,
    /// How long a node must stay red before the rebalancer may migrate a
    /// job off it.
    pub grace: SimDuration,
    /// How long a deferred job waits before retrying admission.
    pub defer_interval: SimDuration,
    /// Admission retries before the scheduler gives up on a job.
    pub max_defers: u32,
    /// Migrations allowed per job (a migration restarts the job).
    pub max_migrations: u32,
    /// Cadence of the red-zone rebalance checks.
    pub rebalance_period: SimDuration,
    /// Number of rebalance checks scheduled (bounds the event horizon).
    pub rebalance_checks: u32,
    /// Placement preference among feasible nodes.
    pub policy: PlacementPolicy,
    /// Nodes per placement shard. Each shard keeps a pressure-ordered
    /// candidate index; fleets of at most one shard behave exactly like
    /// the exhaustive scheduler.
    pub shard_size: usize,
    /// Feasible candidates a bounded placement scan collects before
    /// picking (the scan's early-stop).
    pub place_candidates: usize,
    /// Upper bound on authoritative probes per bounded placement scan:
    /// the scan order is the globally least-estimated `probe_budget`
    /// nodes by the shard indexes.
    pub probe_budget: usize,
    /// Shards whose nodes get a fresh pressure probe per rebalance check
    /// (round-robin across checks).
    pub refresh_shards: usize,
    /// Times a job lost to node death may re-enter the arrival queue
    /// before the scheduler abandons it as orphaned.
    pub retry_budget: u32,
    /// Base delay of the node-loss retry backoff; retry `k` waits
    /// `base * 2^(k-1)` plus deterministic jitter in `[0, base)`.
    pub backoff_base: SimDuration,
    /// Seed of the deterministic backoff jitter (part of the cache key:
    /// different seeds are different schedules).
    pub backoff_seed: u64,
    /// How old a flapping endpoint's stale summary may be before the
    /// scheduler refuses it and forces an authoritative re-read.
    pub stale_window: SimDuration,
    /// Consecutive forced re-reads before a flapping node is quarantined.
    pub quarantine_after: u32,
    /// Consecutive healthy probes a quarantined node must answer before
    /// it is re-admitted as a placement target.
    pub quarantine_healthy: u32,
    /// Criticality-blindness ablation (the conformance suite's failing
    /// policy). A blind scheduler keeps the preemption and migration
    /// machinery but strips every class check from victim selection: any
    /// classified job whose admission fails may preempt, and it evicts
    /// the latest-arriving alive resident regardless of class — which
    /// the cluster oracle flags the moment a victim is not strictly more
    /// expendable than its preemptor.
    pub crit_blind: bool,
}

impl FleetConfig {
    /// A scheduling fleet of `n` homogeneous nodes of `phys_total` bytes.
    pub fn homogeneous(n: usize, phys_total: u64) -> Self {
        FleetConfig {
            nodes: vec![NodeSpec { phys_total }; n],
            scheduler: true,
            grace: SimDuration::from_secs(60),
            defer_interval: SimDuration::from_secs(120),
            max_defers: 30,
            max_migrations: 1,
            rebalance_period: SimDuration::from_secs(60),
            rebalance_checks: 40,
            policy: PlacementPolicy::LeastPressured,
            shard_size: 64,
            place_candidates: 4,
            probe_budget: 16,
            refresh_shards: 1,
            retry_budget: 3,
            backoff_base: SimDuration::from_secs(30),
            backoff_seed: 0xF1EE7,
            stale_window: SimDuration::from_secs(120),
            quarantine_after: 2,
            quarantine_healthy: 3,
            crit_blind: false,
        }
    }

    /// The paper's eight 64-GB workers, scheduler on.
    pub fn paper() -> Self {
        FleetConfig::homogeneous(crate::cluster::PAPER_NODES, 64 * GIB)
    }

    /// `n` 64-GB nodes with the scheduler disabled: every node runs the full
    /// schedule, exactly like [`crate::cluster::run_cluster`].
    pub fn passthrough(n: usize) -> Self {
        FleetConfig {
            scheduler: false,
            ..FleetConfig::homogeneous(n, 64 * GIB)
        }
    }
}

/// What happened to one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job's index in the scenario.
    pub job: usize,
    /// The node the job finally ran on (`None` if the scheduler gave up,
    /// or in passthrough mode where every node runs every job).
    pub node: Option<usize>,
    /// Admission deferrals before placement (or before giving up).
    pub deferrals: u32,
    /// Times the rebalancer migrated the job.
    pub migrations: u32,
    /// Times the job re-entered the arrival queue after losing its node —
    /// to node death or to a preemption by a less-expendable job.
    pub reschedules: u32,
    /// Why the job produced no runtime; `None` = it completed.
    pub failure: Option<JobFailure>,
    /// Completion time minus the job's *arrival* (not its last restart),
    /// seconds; `None` if the job failed, was killed, or was given up on.
    pub runtime_s: Option<f64>,
    /// The criticality class the job declared at submission
    /// (`Standard` in unclassified scenarios).
    pub crit: Criticality,
    /// The latency SLO the job declared, ms (0 = none).
    pub slo_ms: u64,
    /// Reclamation-handler time the job absorbed on its final node, ms
    /// (0 when the job never ran).
    pub stall_ms: u64,
    /// Whether the job met its SLO — trivially `Some(true)` without one;
    /// `None` when the job never completed.
    pub slo_met: Option<bool>,
}

/// Outcome of one fleet run. Serializable end to end: the golden snapshot
/// and determinism tests compare runs by their serialized bytes, and the
/// fleet memoization cache hands out shared results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetResult {
    /// Cluster-level aggregation (slowest-node semantics in passthrough
    /// mode; final-node runtimes under the scheduler, where the quadratic
    /// `per_node_s`/`spread_s` tables stay empty — at 10k nodes × 100k
    /// jobs they would dwarf everything else).
    pub cluster: ClusterResult,
    /// Per-job scheduler outcomes (empty in passthrough mode).
    pub jobs: Vec<JobOutcome>,
    /// The scheduler's placement log (`fleet.*` events; empty in
    /// passthrough mode).
    pub trace: TraceLog,
    /// Cluster-invariant violations from [`FleetOracle`] plus any node-level
    /// conformance violations from the final node runs. Empty = conformant.
    pub violations: Vec<Violation>,
    /// What the injected fleet faults cost this run (all zeros for a clean
    /// run or in passthrough mode).
    pub degradation: FleetDegradationReport,
}

impl FleetResult {
    /// [`ClusterResult::mean_runtime_secs`] with the per-class slices
    /// filled from the per-job outcomes: the mixed-criticality report —
    /// SLO attainment and stall per criticality class.
    pub fn class_mean(&self) -> crate::cluster::ClusterMean {
        self.cluster.mean_runtime_secs().with_classes(&self.jobs)
    }
}

/// Peak-memory estimate used for admission control: what placing a job of
/// this kind may eventually commit on the node.
pub fn demand_estimate(kind: AppKind) -> u64 {
    match kind {
        AppKind::KMeans | AppKind::PageRank | AppKind::NWeight => {
            let job = hibench::job_by_code(kind.code());
            job.working_set + job.exec_demand
        }
        AppKind::GoCache => hibench::gocache_workload().full_bytes(),
        AppKind::Memcached => hibench::memtier_workload().full_bytes(),
    }
}

/// The per-node machine configuration of the *passthrough* path: the base
/// config with this node's salt and size. A node whose size differs from
/// the base keeps no stale monitor — [`MachineConfig::with_setting`]
/// re-scales one to the node.
fn node_machine_cfg(base: MachineConfig, node: usize, phys_total: u64) -> MachineConfig {
    let mut cfg = base;
    cfg.node_salt = node as u64 + 1;
    if cfg.phys_total != phys_total {
        cfg.phys_total = phys_total;
        cfg.monitor = None;
    }
    cfg
}

/// The per-node machine configuration of the *scheduler* path. No node
/// salt: two nodes of the same size running the same schedule under the
/// same faults are byte-identical simulations, so dropping the salt lets
/// them share one content-addressed run-cache entry — the reason a 10k-node
/// fleet only simulates its few hundred distinct nodes. The scheduler's own
/// placement provides the per-node heterogeneity a salt used to fake.
fn sched_node_cfg(base: MachineConfig, phys_total: u64) -> MachineConfig {
    let mut cfg = base;
    cfg.node_salt = 0;
    if cfg.phys_total != phys_total {
        cfg.phys_total = phys_total;
        cfg.monitor = None;
    }
    cfg
}

/// Scheduler event classes, ordered within one instant: faults fire first
/// (a node dead at time `t` is dead for every decision at `t`), then the
/// scheduler restart, then placement attempts (arrivals and retries), then
/// rebalance checks. Clean runs schedule no crash/restart events, so their
/// event order — and their golden traces — are untouched by the renumber.
const CLASS_CRASH: u8 = 0;
const CLASS_RESTART: u8 = 1;
const CLASS_PLACE: u8 = 2;
const CLASS_REBALANCE: u8 = 3;

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Node `node` dies: every resident job is killed mid-run and
    /// re-queued (or orphaned once its retry budget is spent).
    NodeCrash { node: usize },
    /// The scheduler restarts: all advisory state is wiped and the
    /// candidate index is rebuilt from authoritative node reads.
    Restart,
    /// Try to admit job `job` (arrival or deferred retry), attempt number
    /// `attempt` (0 = the arrival itself).
    Place { job: usize, attempt: u32 },
    /// Rebalance check number `check` (1-based): refresh the due shards
    /// and migrate off nodes red beyond the grace window.
    Rebalance { check: u32 },
}

/// One node's scheduling state.
struct NodeState {
    phys_total: u64,
    /// Jobs assigned to this node, in assignment order: `(job, kind,
    /// start offset)`. Only ever appended to, so fault targets (indices
    /// into this list) stay stable.
    apps: Vec<(usize, AppKind, SimDuration)>,
    /// Accumulated migration crashes on this node.
    faults: FaultPlan,
    /// When the node's probes turned contiguously red, ms.
    red_since: Option<u64>,
    /// Memoized full-horizon probe simulation; `None` = dirty (the
    /// assignment set or fault plan changed since it was computed). Every
    /// mutation of `apps` or `faults` must clear this.
    probe: Option<Arc<ScenarioOutcome>>,
    /// The node's top of memory (from its scaled monitor config).
    top: u64,
    /// Advisory effective-load estimate backing the shard index; healed to
    /// the authoritative value on every probe.
    index_effective: u64,
    /// The node's current key in its shard's candidate index.
    index_key: u64,
    /// When the node died, ms since the epoch (`None` = alive).
    dead: Option<u64>,
    /// True while the node is quarantined for flapping probes: deindexed
    /// and ineligible as a placement or migration target.
    quarantined: bool,
    /// Consecutive forced authoritative re-reads (endpoint too stale).
    fail_streak: u32,
    /// Consecutive healthy probes while quarantined.
    healthy_streak: u32,
    /// Whether the node currently sits in its shard's candidate index
    /// (dead and quarantined nodes do not).
    indexed: bool,
}

/// One node's state as seen by a scheduling decision at some instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NodeView {
    node: usize,
    summary: PressureSummary,
    /// Summed demand estimates of this node's assigned, unfinished jobs.
    reserved: u64,
}

impl NodeView {
    /// The load the placer ranks and admits against: committed memory or
    /// outstanding reservations, whichever is larger (reservations cover
    /// placed jobs that have not grown into their demand yet; `used` covers
    /// jobs that outgrew their estimate).
    fn effective(&self) -> u64 {
        self.summary.used.max(self.reserved)
    }
}

/// What a node's probe endpoint answered. The *endpoint* is the fiction
/// the fault plan degrades: authoritative node state (the simulation) is
/// always intact underneath, but a flapping endpoint serves the summary it
/// captured when the flap started — and past the configured stale window
/// the scheduler refuses that and pays for an authoritative re-read.
enum ProbeRead {
    /// The endpoint is healthy: the view is authoritative at `t`.
    Fresh(NodeView),
    /// The endpoint is flapping but its stale summary (captured at flap
    /// start) is inside [`FleetConfig::stale_window`] — tolerated.
    Stale(NodeView),
    /// The endpoint is flapping and its summary is too old to act on.
    Unreachable,
}

/// The shard-index key for a node at estimated load `effective`: the
/// `effective / top` ratio in 2^20 fixed point. Advisory ordering only —
/// admission never reads it.
fn index_key(effective: u64, top: u64) -> u64 {
    ((effective as u128 * (1u128 << 20)) / top.max(1) as u128).min(u64::MAX as u128) as u64
}

struct Fleet<'a> {
    scenario: &'a Scenario,
    base_cfg: MachineConfig,
    fleet: &'a FleetConfig,
    plan: &'a FleetFaultPlan,
    nodes: Vec<NodeState>,
    trace: TraceLog,
    /// Final `(node, slot in that node's app list)` per job.
    assignment: Vec<Option<(usize, usize)>>,
    deferrals: Vec<u32>,
    migrations: Vec<u32>,
    gave_up: Vec<bool>,
    /// Per-job node-loss requeues (bounded by the retry budget).
    reschedules: Vec<u32>,
    /// Jobs abandoned after node loss exhausted their retry budget.
    orphaned: Vec<bool>,
    /// Probe-flap windows per node, from the fault plan.
    flaps: HashMap<usize, Vec<ProbeFlap>>,
    /// Running cost of the injected faults.
    degradation: FleetDegradationReport,
    /// Per-shard candidate index: `(index_key, node)`, ascending = least
    /// estimated pressure first, ties to the lower node index.
    shards: Vec<BTreeSet<(u64, u32)>>,
    /// Precomputed idle summary per distinct node size: what a probe of a
    /// node with nothing assigned answers, without ever simulating.
    idle: HashMap<u64, PressureSummary>,
    /// The placement time the candidate index was last bulk-refreshed at
    /// (the index decays as simulated time passes — see [`Fleet::refresh`]).
    index_fresh_ms: Option<u64>,
    /// Worker threads for pre-warming and final runs.
    workers: usize,
}

impl<'a> Fleet<'a> {
    fn new(
        scenario: &'a Scenario,
        base_cfg: MachineConfig,
        fleet: &'a FleetConfig,
        plan: &'a FleetFaultPlan,
        workers: usize,
    ) -> Fleet<'a> {
        let njobs = scenario.len();
        let mut degradation = FleetDegradationReport::default();
        let mut flaps: HashMap<usize, Vec<ProbeFlap>> = HashMap::new();
        for f in &plan.flaps {
            if f.node < fleet.nodes.len() {
                flaps.entry(f.node).or_default().push(*f);
            } else {
                degradation.faults_unapplied += 1;
            }
        }
        let mut idle: HashMap<u64, PressureSummary> = HashMap::new();
        let mut nodes = Vec::with_capacity(fleet.nodes.len());
        for spec in &fleet.nodes {
            let summary = *idle.entry(spec.phys_total).or_insert_with(|| {
                let cfg = sched_node_cfg(base_cfg, spec.phys_total).with_setting(&Setting::m3(0));
                let monitor = cfg
                    .monitor
                    .unwrap_or_else(|| MonitorConfig::scaled(cfg.phys_total));
                Monitor::new(monitor).pressure_summary(0)
            });
            nodes.push(NodeState {
                phys_total: spec.phys_total,
                apps: Vec::new(),
                faults: FaultPlan::none(),
                red_since: None,
                probe: None,
                top: summary.top,
                index_effective: 0,
                index_key: 0,
                dead: None,
                quarantined: false,
                fail_streak: 0,
                healthy_streak: 0,
                indexed: true,
            });
        }
        let shard_size = fleet.shard_size.max(1);
        let nshards = nodes.len().div_ceil(shard_size).max(1);
        let mut shards = vec![BTreeSet::new(); nshards];
        for n in 0..nodes.len() {
            shards[n / shard_size].insert((0u64, n as u32));
        }
        Fleet {
            scenario,
            base_cfg,
            fleet,
            plan,
            nodes,
            trace: TraceLog::new(),
            assignment: vec![None; njobs],
            deferrals: vec![0; njobs],
            migrations: vec![0; njobs],
            gave_up: vec![false; njobs],
            reschedules: vec![0; njobs],
            orphaned: vec![false; njobs],
            flaps,
            degradation,
            shards,
            idle,
            index_fresh_ms: None,
            workers: workers.max(1),
        }
    }

    /// True if the node may be probed for placement and targeted: alive
    /// and not quarantined.
    fn available(&self, node: usize) -> bool {
        self.nodes[node].dead.is_none() && !self.nodes[node].quarantined
    }

    /// The sub-scenario a node's assigned jobs form. Deliberately *not*
    /// salted with the node index: the name is part of the run-cache key,
    /// and nodes with identical schedules must share one entry.
    fn node_scenario(&self, node: usize) -> Scenario {
        let st = &self.nodes[node];
        let classes = st
            .apps
            .iter()
            .map(|&(job, _, _)| self.scenario.class_of(job))
            .collect();
        Scenario {
            name: format!("{}::sched", self.scenario.name),
            apps: st
                .apps
                .iter()
                .map(|&(_, kind, start)| (kind, start))
                .collect(),
            classes: Vec::new(),
        }
        .with_classes(classes)
    }

    fn node_cfg(&self, node: usize) -> MachineConfig {
        sched_node_cfg(self.base_cfg, self.nodes[node].phys_total)
    }

    /// Simulates node `node` over the full horizon (content-addressed
    /// cache) and returns the outcome. `capture` keeps the node trace and
    /// profile (the final full runs); probes instead run stripped with a
    /// pressure timeline sampled at every monitor poll, so one simulation
    /// answers probes at *every* time.
    fn simulate(&self, node: usize, capture: bool) -> Arc<ScenarioOutcome> {
        let scenario = self.node_scenario(node);
        let setting = Setting::m3(scenario.len());
        let mut cfg = self.node_cfg(node);
        if !capture {
            cfg.sample_period = None;
            cfg.capture_trace = false;
            cfg.pressure_timeline_polls = Some(1);
        }
        run_scenario_cached_faulted(&scenario, &setting, cfg, &self.nodes[node].faults)
    }

    /// The node's probe simulation, computed only if the node is dirty.
    fn probe_outcome(&mut self, node: usize) -> Arc<ScenarioOutcome> {
        if let Some(out) = &self.nodes[node].probe {
            return Arc::clone(out);
        }
        let out = self.simulate(node, false);
        self.nodes[node].probe = Some(Arc::clone(&out));
        out
    }

    /// Reads node `node`'s state at time `t` — the incremental-probe read.
    /// Idle nodes answer from the precomputed per-size summary; loaded
    /// nodes answer from the cached probe simulation's pressure timeline
    /// (last sample at or before `t`).
    ///
    /// Besides the monitor's summary, the view carries the node's *reserved*
    /// demand: the summed demand estimates of jobs assigned to it that are
    /// alive at `t`. A freshly placed job has committed nothing yet, so
    /// admission must rank against `max(used, reserved)` or simultaneous
    /// arrivals would all pile onto the same empty node.
    fn view(&mut self, node: usize, t: SimTime) -> NodeView {
        let (summary, reserved) = if self.nodes[node].apps.is_empty() {
            (self.idle[&self.nodes[node].phys_total], 0)
        } else {
            let t_ms = t.as_millis();
            let out = self.probe_outcome(node);
            let timeline = &out.run.pressure_timeline;
            let summary = match timeline.partition_point(|&(at, _)| at <= t_ms) {
                0 => self.idle[&self.nodes[node].phys_total],
                i => timeline[i - 1].1,
            };
            let mut reserved = 0u64;
            for (slot, &(job, kind, _)) in self.nodes[node].apps.iter().enumerate() {
                let here = self.assignment[job] == Some((node, slot));
                let alive = out.run.apps.get(slot).is_none_or(|a| {
                    a.started.as_millis() <= t_ms && a.ended.is_none_or(|e| e.as_millis() > t_ms)
                });
                if here && alive {
                    reserved = reserved.saturating_add(demand_estimate(kind));
                }
            }
            (summary, reserved)
        };
        NodeView {
            node,
            summary,
            reserved,
        }
    }

    /// The flap window covering `t` on `node`, if any.
    fn flap_at(&self, node: usize, t: SimTime) -> Option<ProbeFlap> {
        self.flaps
            .get(&node)?
            .iter()
            .copied()
            .find(|f| f.contains(t))
    }

    /// Reads node `node`'s probe endpoint at time `t`. Outside a flap
    /// window this is the authoritative view; inside one, the endpoint
    /// serves the summary it captured when the flap started — accepted
    /// while younger than [`FleetConfig::stale_window`], refused after.
    /// Every stale acceptance and every refusal is counted in the
    /// degradation report.
    fn endpoint(&mut self, node: usize, t: SimTime) -> ProbeRead {
        match self.flap_at(node, t) {
            None => ProbeRead::Fresh(self.view(node, t)),
            Some(f) => {
                let age = t.as_millis().saturating_sub(f.start.as_millis());
                if age <= self.fleet.stale_window.as_millis() {
                    self.degradation.stale_probe_decisions += 1;
                    let frozen = SimTime::from_millis(f.start.as_millis());
                    ProbeRead::Stale(self.view(node, frozen))
                } else {
                    self.degradation.probe_failures += 1;
                    ProbeRead::Unreachable
                }
            }
        }
    }

    /// Advances node `node`'s health streaks after a traced probe. An
    /// `ok` read resets the failure streak and, on a quarantined node,
    /// counts toward re-admission; a failed read counts toward quarantine.
    /// Stale-but-tolerated reads are neutral and never reach here.
    fn note_health(&mut self, node: usize, t: SimTime, ok: bool) {
        if ok {
            self.nodes[node].fail_streak = 0;
            if !self.nodes[node].quarantined {
                return;
            }
            self.nodes[node].healthy_streak += 1;
            let streak = self.nodes[node].healthy_streak;
            if streak < self.fleet.quarantine_healthy.max(1) {
                return;
            }
            self.nodes[node].quarantined = false;
            self.nodes[node].healthy_streak = 0;
            self.trace.record(
                t,
                node as u64,
                TraceData::FleetQuarantine {
                    node: node as u64,
                    entered: false,
                    streak: streak as u64,
                },
            );
            if self.nodes[node].dead.is_none() {
                self.set_indexed(node, true);
            }
        } else {
            self.nodes[node].healthy_streak = 0;
            self.nodes[node].fail_streak += 1;
            let streak = self.nodes[node].fail_streak;
            if self.nodes[node].quarantined || streak < self.fleet.quarantine_after.max(1) {
                return;
            }
            self.nodes[node].quarantined = true;
            self.degradation.quarantine_episodes += 1;
            self.trace.record(
                t,
                node as u64,
                TraceData::FleetQuarantine {
                    node: node as u64,
                    entered: true,
                    streak: streak as u64,
                },
            );
            self.set_indexed(node, false);
        }
    }

    /// Reads node `node`'s pressure at time `t`, records the
    /// `fleet.pressure` event, heals the shard index with the
    /// authoritative load, and advances the node's red-streak clock.
    /// Chaos-aware: a flapping endpoint serves its tolerated stale view;
    /// past the stale window the scheduler forces an authoritative
    /// re-read, which counts against the node's health (quarantine).
    fn probe(&mut self, node: usize, t: SimTime) -> NodeView {
        debug_assert!(self.nodes[node].dead.is_none(), "probed a dead node");
        let view = match self.endpoint(node, t) {
            ProbeRead::Fresh(v) => {
                self.note_health(node, t, true);
                v
            }
            ProbeRead::Stale(v) => v,
            ProbeRead::Unreachable => {
                self.note_health(node, t, false);
                self.view(node, t)
            }
        };
        self.update_index(node, view.effective());
        let summary = view.summary;
        let zone: TraceZone = summary.zone.into();
        self.trace.record(
            t,
            node as u64,
            TraceData::FleetPressure {
                node: node as u64,
                zone,
                used: summary.used,
                reserved: view.reserved,
                high: summary.high,
                top: summary.top,
                escalations: summary.watchdog_escalations,
            },
        );
        match summary.zone {
            Zone::Red | Zone::AboveTop => {
                self.nodes[node].red_since.get_or_insert(t.as_millis());
            }
            _ => self.nodes[node].red_since = None,
        }
        view
    }

    fn shard_size(&self) -> usize {
        self.fleet.shard_size.max(1)
    }

    /// Moves `node` to its new position in the shard index. Deindexed
    /// nodes (dead or quarantined) keep their key current without ever
    /// re-entering the index — only [`Fleet::set_indexed`] re-admits.
    fn update_index(&mut self, node: usize, effective: u64) {
        let key = index_key(effective, self.nodes[node].top);
        let old = self.nodes[node].index_key;
        if key != old {
            if self.nodes[node].indexed {
                let shard = node / self.shard_size();
                self.shards[shard].remove(&(old, node as u32));
                self.shards[shard].insert((key, node as u32));
            }
            self.nodes[node].index_key = key;
        }
        self.nodes[node].index_effective = effective;
    }

    /// Inserts or removes `node` from its shard's candidate index.
    fn set_indexed(&mut self, node: usize, on: bool) {
        if self.nodes[node].indexed == on {
            return;
        }
        let shard = node / self.shard_size();
        let entry = (self.nodes[node].index_key, node as u32);
        if on {
            self.shards[shard].insert(entry);
        } else {
            self.shards[shard].remove(&entry);
        }
        self.nodes[node].indexed = on;
    }

    /// The bounded placement scan order: the globally least-estimated
    /// [`FleetConfig::probe_budget`] nodes, k-way-merged from the sorted
    /// per-shard indexes (`O(shards + budget * log(shards))` per scan —
    /// never a walk over all N nodes).
    fn candidate_order(&self) -> Vec<usize> {
        let budget = self
            .fleet
            .probe_budget
            .max(self.fleet.place_candidates.max(1));
        let mut iters: Vec<_> = self.shards.iter().map(|s| s.iter().copied()).collect();
        let mut heap: BinaryHeap<Reverse<((u64, u32), usize)>> =
            BinaryHeap::with_capacity(iters.len());
        for (i, it) in iters.iter_mut().enumerate() {
            if let Some(e) = it.next() {
                heap.push(Reverse((e, i)));
            }
        }
        let mut out = Vec::with_capacity(budget);
        while out.len() < budget {
            let Some(Reverse((entry, shard))) = heap.pop() else {
                break;
            };
            out.push(entry.1 as usize);
            if let Some(e) = iters[shard].next() {
                heap.push(Reverse((e, shard)));
            }
        }
        out
    }

    /// Heals the whole candidate index with silent cached view reads at
    /// time `t` (no trace events; clean nodes answer from their cached
    /// probe timeline, idle nodes from the per-size summary). Returns the
    /// views that would admit `demand` more bytes — so the defer fallback
    /// gets its feasible set from the same sweep. Records the refresh
    /// instant so at most one sweep runs per placement time.
    fn refresh(&mut self, t: SimTime, demand: u64) -> Vec<NodeView> {
        self.index_fresh_ms = Some(t.as_millis());
        let mut feasible: Vec<NodeView> = Vec::new();
        for node in 0..self.nodes.len() {
            if !self.available(node) {
                continue;
            }
            match self.endpoint(node, t) {
                ProbeRead::Fresh(v) | ProbeRead::Stale(v) => {
                    self.update_index(node, v.effective());
                    if Self::admits(&v, demand) {
                        feasible.push(v);
                    }
                }
                // Bulk sweeps are health-neutral (they must not quarantine
                // half the fleet in one pass); an unreachable node just
                // takes the pessimal key until a real probe heals it.
                ProbeRead::Unreachable => self.update_index(node, u64::MAX),
            }
        }
        feasible
    }

    /// True if `demand` more bytes fit on this node without crossing its
    /// top of memory (and the node is not already red).
    fn admits(view: &NodeView, demand: u64) -> bool {
        matches!(view.summary.zone, Zone::Green | Zone::Yellow)
            && view.effective().saturating_add(demand) <= view.summary.top
    }

    /// Picks the preferred node among `candidates` by the configured
    /// policy: exact integer comparison of `effective/top` ratios
    /// (`eff_a * top_b` vs `eff_b * top_a`), ties to the lower node index.
    fn pick(&self, candidates: &[NodeView]) -> Option<usize> {
        let prefer_least = matches!(self.fleet.policy, PlacementPolicy::LeastPressured);
        let mut best: Option<&NodeView> = None;
        for v in candidates {
            let better = match best {
                None => true,
                Some(b) => {
                    let lhs = v.effective() as u128 * b.summary.top as u128;
                    let rhs = b.effective() as u128 * v.summary.top as u128;
                    if prefer_least {
                        lhs < rhs
                    } else {
                        lhs > rhs
                    }
                }
            };
            if better {
                best = Some(v);
            }
        }
        best.map(|v| v.node)
    }

    /// Assigns job `job` to `node` starting at `t` and records the
    /// bookkeeping shared by placement and migration. The node's probe
    /// cache is invalidated (its schedule changed) and its advisory index
    /// estimate grows by the job's demand.
    fn assign(&mut self, job: usize, kind: AppKind, node: usize, t: SimTime) {
        let slot = self.nodes[node].apps.len();
        self.nodes[node]
            .apps
            .push((job, kind, t.saturating_since(SimTime::ZERO)));
        self.assignment[job] = Some((node, slot));
        self.nodes[node].probe = None;
        let est = self.nodes[node]
            .index_effective
            .saturating_add(demand_estimate(kind));
        self.update_index(node, est);
    }

    /// Last-resort admission for a job nothing currently admits: evict
    /// more-expendable residents from one node so the job fits (DESIGN.md
    /// §16). A latency-critical job may preempt `Batch` reservations —
    /// never the other way around; under the [`FleetConfig::crit_blind`]
    /// ablation the class checks disappear and the oracle's
    /// `sched.class.preempt` invariant catches the first wrong-direction
    /// eviction.
    ///
    /// Victims are chosen on the node needing the fewest evictions (ties
    /// to the lower node index), latest-arriving first, until the demand
    /// heuristic says the job fits. Each victim is crashed at `t` exactly
    /// like a migration source and re-enters the arrival queue after the
    /// node-loss backoff (`fleet.reschedule` with `requeued`, so the
    /// oracle's lost-job resolution machinery tracks it; preemption never
    /// orphans — the victim always requeues). Returns the chosen node;
    /// the caller re-probes it and places only on an authoritative admit.
    fn try_preempt(
        &mut self,
        job: usize,
        demand: u64,
        t: SimTime,
        queue: &mut EventQueue,
    ) -> Option<usize> {
        if !self.scenario.is_classified() {
            return None;
        }
        let crit = self.scenario.class_of(job).crit;
        if !self.fleet.crit_blind && crit != Criticality::LatencyCritical {
            return None;
        }
        let t_ms = t.as_millis();
        let mut best: Option<(usize, usize)> = None; // (victim count, node)
        let mut best_victims: Vec<(usize, usize, AppKind)> = Vec::new();
        for node in 0..self.nodes.len() {
            if !self.available(node) || self.nodes[node].apps.is_empty() {
                continue;
            }
            let out = self.probe_outcome(node);
            let mut evictable: Vec<(usize, usize, AppKind)> = self.nodes[node]
                .apps
                .iter()
                .enumerate()
                .filter(|&(slot, &(res, _, _))| {
                    self.assignment[res] == Some((node, slot))
                        && (self.fleet.crit_blind
                            || self.scenario.class_of(res).crit == Criticality::Batch)
                        && out.run.apps.get(slot).is_none_or(|a| {
                            a.started.as_millis() <= t_ms
                                && a.ended.is_none_or(|e| e.as_millis() > t_ms)
                        })
                })
                .map(|(slot, &(res, kind, _))| (slot, res, kind))
                .collect();
            drop(out);
            if evictable.is_empty() {
                continue;
            }
            evictable.sort_by_key(|&(_, res, _)| Reverse(res)); // latest-arriving first
            let view = self.view(node, t);
            let mut freed = 0u64;
            let mut needed = None;
            for (i, &(_, _, kind)) in evictable.iter().enumerate() {
                freed = freed.saturating_add(demand_estimate(kind));
                let after = view.effective().saturating_sub(freed);
                if after.saturating_add(demand) <= view.summary.top {
                    needed = Some(i + 1);
                    break;
                }
            }
            let Some(n) = needed else { continue };
            if best.is_none_or(|(bn, _)| n < bn) {
                best = Some((n, node));
                evictable.truncate(n);
                best_victims = evictable;
            }
        }
        let (_, node) = best?;
        let mut freed = 0u64;
        for &(slot, victim, kind) in &best_victims {
            self.nodes[node].faults = std::mem::take(&mut self.nodes[node].faults)
                .with_crash(t.saturating_since(SimTime::ZERO), slot);
            self.assignment[victim] = None;
            self.reschedules[victim] += 1;
            freed = freed.saturating_add(demand_estimate(kind));
            let retry_at = t_ms + self.backoff_ms(victim, self.reschedules[victim]);
            self.trace.record(
                t,
                victim as u64,
                TraceData::SchedClassPreempt {
                    job: job as u64,
                    crit,
                    victim: victim as u64,
                    victim_crit: self.scenario.class_of(victim).crit,
                    node: node as u64,
                },
            );
            self.trace.record(
                t,
                victim as u64,
                TraceData::FleetReschedule {
                    job: victim as u64,
                    from: node as u64,
                    retries: self.reschedules[victim] as u64,
                    retry_at_ms: retry_at,
                    requeued: true,
                },
            );
            queue.insert(
                (retry_at, CLASS_PLACE, victim as u64),
                Event::Place {
                    job: victim,
                    attempt: 0,
                },
            );
        }
        self.nodes[node].probe = None;
        let est = self.nodes[node].index_effective.saturating_sub(freed);
        self.update_index(node, est);
        Some(node)
    }

    fn on_place(&mut self, job: usize, attempt: u32, t: SimTime, queue: &mut EventQueue) {
        let kind = self.scenario.apps[job].0;
        let demand = demand_estimate(kind);
        if matches!(self.fleet.policy, PlacementPolicy::Blind) {
            // The blind policy never probes: the missing pressure snapshot
            // is itself the conformance violation the oracle reports.
            self.trace.record(
                t,
                job as u64,
                TraceData::FleetPlace {
                    job: job as u64,
                    node: 0,
                    used: 0,
                    demand,
                    top: self.nodes[0].top,
                },
            );
            self.deferrals[job] = attempt;
            self.assign(job, kind, 0, t);
            return;
        }
        // A bounded scan is only sound for the default policy, and a job's
        // final attempt must see every node (the no-starvation guarantee:
        // give-up implies nothing anywhere admits the job).
        let exhaustive = !matches!(self.fleet.policy, PlacementPolicy::LeastPressured)
            || attempt >= self.fleet.max_defers;
        // Index keys go stale as simulated time passes (a node that drained
        // since its last probe keeps its old high key until something reads
        // it again), so the first placement at each new instant bulk-heals
        // the index with silent cached view reads — no trace events, no new
        // simulations for clean nodes. Freshly healed, ties in the key
        // order break by node index, which keeps placement patterns — and
        // with them the set of distinct node schedules the content-
        // addressed run cache must actually simulate — regular across
        // arrival bursts of any size.
        if !exhaustive && self.index_fresh_ms != Some(t.as_millis()) {
            self.refresh(t, 0);
        }
        let order: Vec<usize> = if exhaustive {
            (0..self.nodes.len())
                .filter(|&n| self.available(n))
                .collect()
        } else {
            self.candidate_order()
        };
        let want = self.fleet.place_candidates.max(1);
        let budget = self.fleet.probe_budget.max(want);
        let mut probed: Vec<NodeView> = Vec::new();
        let mut candidates: Vec<NodeView> = Vec::new();
        for node in order {
            if !self.available(node) {
                continue;
            }
            let v = self.probe(node, t);
            if self.nodes[node].quarantined {
                // The probe itself tipped the node into quarantine (its
                // endpoint was unreachable): not a candidate.
                continue;
            }
            probed.push(v);
            let feasible = match self.fleet.policy {
                // The broken test policy skips admission control entirely.
                PlacementPolicy::MostPressured => true,
                _ => Self::admits(&v, demand),
            };
            if feasible {
                candidates.push(v);
            }
            if !exhaustive && (candidates.len() >= want || probed.len() >= budget) {
                break;
            }
        }
        // The index is advisory and decays: before deferring, heal it with
        // a full silent sweep and retry the pick. Only a genuinely full
        // fleet defers, and the next scan's index is fresh.
        let mut choice = self.pick(&candidates);
        if choice.is_none() && !exhaustive {
            let feasible = self.refresh(t, demand);
            if let Some(node) = self.pick(&feasible) {
                // Re-read through `probe` so the placement is backed by a
                // traced pressure snapshot like every other admission.
                let v = self.probe(node, t);
                probed.push(v);
                choice = Some(node);
            }
        }
        // Nothing admits the job outright: a latency-critical job may
        // evict Batch reservations instead of deferring. The preempted
        // node is re-read through `probe`, and the job still only places
        // on an authoritative admit — if the freed memory has not surfaced
        // in the pressure timeline yet, the job defers once more and its
        // retry lands on the now-lighter node.
        if choice.is_none() {
            if let Some(node) = self.try_preempt(job, demand, t, queue) {
                let v = self.probe(node, t);
                probed.push(v);
                if Self::admits(&v, demand) {
                    choice = Some(node);
                }
            }
        }
        match choice {
            Some(node) => {
                // Most recent probe of the node: a preemption re-probe
                // supersedes any earlier read this same placement took.
                let summary = probed
                    .iter()
                    .rev()
                    .find(|v| v.node == node)
                    .expect("picked node was probed")
                    .summary;
                self.trace.record(
                    t,
                    job as u64,
                    TraceData::FleetPlace {
                        job: job as u64,
                        node: node as u64,
                        used: summary.used,
                        demand,
                        top: summary.top,
                    },
                );
                self.deferrals[job] = attempt;
                self.assign(job, kind, node, t);
            }
            None if attempt >= self.fleet.max_defers => {
                self.deferrals[job] = attempt;
                self.gave_up[job] = true;
                self.trace.record(
                    t,
                    job as u64,
                    TraceData::FleetGiveUp {
                        job: job as u64,
                        attempts: attempt as u64 + 1,
                        demand,
                    },
                );
            }
            None => {
                let retry =
                    SimTime::from_millis(t.as_millis() + self.fleet.defer_interval.as_millis());
                self.trace.record(
                    t,
                    job as u64,
                    TraceData::FleetDefer {
                        job: job as u64,
                        attempt: attempt as u64 + 1,
                        retry_at_ms: retry.as_millis(),
                    },
                );
                queue.insert(
                    (retry.as_millis(), CLASS_PLACE, job as u64),
                    Event::Place {
                        job,
                        attempt: attempt + 1,
                    },
                );
            }
        }
    }

    fn on_rebalance(&mut self, check: u32, t: SimTime) {
        let nshards = self.shards.len();
        if nshards == 0 {
            return;
        }
        // Round-robin refresh: check k covers `refresh_shards` shards
        // starting where check k-1 left off.
        let refresh = self.fleet.refresh_shards.clamp(1, nshards);
        let start = (check as usize - 1).wrapping_mul(refresh) % nshards;
        let shard_size = self.shard_size();
        let mut due_nodes: Vec<usize> = Vec::new();
        for i in 0..refresh {
            let shard = (start + i) % nshards;
            let lo = shard * shard_size;
            due_nodes.extend(lo..(lo + shard_size).min(self.nodes.len()));
        }
        due_nodes.sort_unstable();
        due_nodes.dedup();
        // Dead nodes are past probing; quarantined ones stay in the sweep —
        // the rebalance cadence is exactly the health-check cadence their
        // re-admission streak builds on.
        due_nodes.retain(|&n| self.nodes[n].dead.is_none());
        // Pre-warm the dirty nodes' probe simulations on the worker pool.
        // Sound under any worker count: each outcome is a pure function of
        // that node's own state, and everything below reads the warmed
        // caches serially in node order.
        let dirty: Vec<usize> = due_nodes
            .iter()
            .copied()
            .filter(|&n| !self.nodes[n].apps.is_empty() && self.nodes[n].probe.is_none())
            .collect();
        if self.workers > 1 && dirty.len() > 1 {
            let this: &Fleet = self;
            let outs = crate::parallel::parallel_map(dirty.clone(), self.workers, |n| {
                this.simulate(n, false)
            });
            for (&n, out) in dirty.iter().zip(outs) {
                self.nodes[n].probe = Some(out);
            }
        }
        let mut views: HashMap<usize, NodeView> = HashMap::new();
        for &node in &due_nodes {
            let v = self.probe(node, t);
            views.insert(node, v);
        }
        let grace = self.fleet.grace.as_millis();
        let t_ms = t.as_millis();
        for &node in &due_nodes {
            let Some(since) = self.nodes[node].red_since else {
                continue;
            };
            if t_ms.saturating_sub(since) < grace || self.nodes[node].apps.is_empty() {
                continue;
            }
            let red_for = t_ms.saturating_sub(since);
            // Victim: the most expendable job alive on this node at `t`
            // with migration budget left — Batch moves before Standard,
            // Standard before LatencyCritical — and within a class the
            // lowest-priority (latest-arriving) one. Unclassified
            // scenarios (and the `crit_blind` ablation) collapse to the
            // pure latest-arriving rule.
            let out = self.probe_outcome(node);
            let victim = self.nodes[node]
                .apps
                .iter()
                .enumerate()
                .filter(|&(slot, &(job, _, _))| {
                    self.assignment[job] == Some((node, slot))
                        && self.migrations[job] < self.fleet.max_migrations
                        && out.run.apps.get(slot).is_some_and(|a| {
                            a.started.as_millis() <= t_ms
                                && a.ended.is_none_or(|e| e.as_millis() > t_ms)
                        })
                })
                .max_by_key(|&(_, &(job, _, _))| {
                    let exp = if self.fleet.crit_blind {
                        0
                    } else {
                        self.scenario.class_of(job).crit.expendability()
                    };
                    (exp, job)
                })
                .map(|(slot, &(job, kind, _))| (slot, job, kind));
            let Some((slot, job, kind)) = victim else {
                continue;
            };
            drop(out);
            // Target: least-pressured feasible node other than the source,
            // found by the same bounded scan placement uses (views probed
            // this check are reused, not re-recorded).
            let demand = demand_estimate(kind);
            let want = self.fleet.place_candidates.max(1);
            let budget = self.fleet.probe_budget.max(want);
            let mut candidates: Vec<NodeView> = Vec::new();
            let mut scanned = 0usize;
            for cand in self.candidate_order() {
                if cand == node || !self.available(cand) {
                    continue;
                }
                let v = match views.get(&cand) {
                    Some(v) => *v,
                    None => {
                        let v = self.probe(cand, t);
                        views.insert(cand, v);
                        v
                    }
                };
                if self.nodes[cand].quarantined {
                    continue; // the probe itself quarantined the candidate
                }
                scanned += 1;
                if Self::admits(&v, demand) {
                    candidates.push(v);
                }
                if candidates.len() >= want || scanned >= budget {
                    break;
                }
            }
            let Some(target) = self.pick(&candidates) else {
                continue; // nowhere better to go: migrating would not help
            };
            self.nodes[node].faults = std::mem::take(&mut self.nodes[node].faults)
                .with_crash(t.saturating_since(SimTime::ZERO), slot);
            self.nodes[node].probe = None;
            let est = self.nodes[node].index_effective.saturating_sub(demand);
            self.update_index(node, est);
            self.migrations[job] += 1;
            self.trace.record(
                t,
                job as u64,
                TraceData::FleetMigrate {
                    job: job as u64,
                    from: node as u64,
                    to: target as u64,
                    red_for_ms: red_for,
                },
            );
            self.assign(job, kind, target, t);
        }
    }

    /// The deterministic retry backoff for a job's `retries`-th node-loss
    /// requeue, ms: exponential in the retry count with jitter in
    /// `[0, base)` drawn from a counter-keyed [`SimRng`] — pure in
    /// `(backoff_seed, job, retries)`, so replays are byte-identical and
    /// co-lost jobs do not thunder back in lockstep.
    fn backoff_ms(&self, job: usize, retries: u32) -> u64 {
        let base = self.fleet.backoff_base.as_millis().max(1);
        let exp = base.saturating_mul(1 << (retries.saturating_sub(1)).min(5));
        let seed = self.fleet.backoff_seed
            ^ (job as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (u64::from(retries) << 32);
        exp + SimRng::new(seed).gen_range(base)
    }

    /// Node `node` dies at `t`: every job alive on it is killed mid-run
    /// (a crash fault at the death instant, exactly like a migration
    /// source) and either re-enters the arrival queue after a backoff or,
    /// once its retry budget is spent, is given up on as orphaned.
    fn on_node_crash(&mut self, node: usize, t: SimTime, queue: &mut EventQueue) {
        if self.nodes[node].dead.is_some() {
            self.degradation.faults_unapplied += 1;
            return;
        }
        let t_ms = t.as_millis();
        // Which residents are alive is read from the pre-crash probe
        // simulation — before the crash faults below invalidate it.
        let mut lost: Vec<(usize, usize, AppKind)> = Vec::new();
        if !self.nodes[node].apps.is_empty() {
            let out = self.probe_outcome(node);
            for (slot, &(job, kind, _)) in self.nodes[node].apps.iter().enumerate() {
                if self.assignment[job] != Some((node, slot)) {
                    continue;
                }
                let alive = out.run.apps.get(slot).is_none_or(|a| {
                    a.started.as_millis() <= t_ms && a.ended.is_none_or(|e| e.as_millis() > t_ms)
                });
                if alive {
                    lost.push((slot, job, kind));
                }
            }
        }
        self.nodes[node].dead = Some(t_ms);
        self.nodes[node].red_since = None;
        self.set_indexed(node, false);
        self.degradation.nodes_lost += 1;
        self.trace.record(
            t,
            node as u64,
            TraceData::FleetNodeLost {
                node: node as u64,
                jobs_lost: lost.len() as u64,
            },
        );
        for &(slot, _, _) in &lost {
            self.nodes[node].faults = std::mem::take(&mut self.nodes[node].faults)
                .with_crash(t.saturating_since(SimTime::ZERO), slot);
        }
        self.nodes[node].probe = None;
        for (_, job, kind) in lost {
            self.assignment[job] = None;
            self.degradation.jobs_lost += 1;
            self.reschedules[job] += 1;
            let retries = self.reschedules[job];
            if retries > self.fleet.retry_budget {
                self.orphaned[job] = true;
                self.degradation.jobs_orphaned += 1;
                self.trace.record(
                    t,
                    job as u64,
                    TraceData::FleetReschedule {
                        job: job as u64,
                        from: node as u64,
                        retries: retries as u64,
                        retry_at_ms: 0,
                        requeued: false,
                    },
                );
                self.trace.record(
                    t,
                    job as u64,
                    TraceData::FleetGiveUp {
                        job: job as u64,
                        attempts: self.deferrals[job] as u64 + 1,
                        demand: demand_estimate(kind),
                    },
                );
                continue;
            }
            let retry_at = t_ms + self.backoff_ms(job, retries);
            self.degradation.jobs_rescheduled += 1;
            self.trace.record(
                t,
                job as u64,
                TraceData::FleetReschedule {
                    job: job as u64,
                    from: node as u64,
                    retries: retries as u64,
                    retry_at_ms: retry_at,
                    requeued: true,
                },
            );
            // The job re-enters the arrival queue with a fresh admission
            // attempt count (its defer budget is per-placement-attempt).
            queue.insert(
                (retry_at, CLASS_PLACE, job as u64),
                Event::Place { job, attempt: 0 },
            );
        }
    }

    /// Mid-horizon scheduler restart: every advisory structure — the
    /// shard indexes, the red-streak clocks, the refresh stamp — dies
    /// with the old process and is rebuilt from authoritative node reads.
    /// Death and quarantine survive (they are node state, not scheduler
    /// state); an unreachable endpoint re-enters pessimistically at the
    /// maximal key until a real probe heals it.
    fn on_restart(&mut self, t: SimTime) {
        self.degradation.scheduler_restarts += 1;
        for shard in &mut self.shards {
            shard.clear();
        }
        self.index_fresh_ms = None;
        for node in 0..self.nodes.len() {
            self.nodes[node].red_since = None;
            self.nodes[node].indexed = false;
        }
        for node in 0..self.nodes.len() {
            if !self.available(node) {
                continue;
            }
            let effective = match self.endpoint(node, t) {
                ProbeRead::Fresh(v) | ProbeRead::Stale(v) => v.effective(),
                ProbeRead::Unreachable => u64::MAX,
            };
            let key = index_key(effective, self.nodes[node].top);
            self.nodes[node].index_key = key;
            self.nodes[node].index_effective = effective;
            self.nodes[node].indexed = true;
            let shard = node / self.shard_size();
            self.shards[shard].insert((key, node as u32));
            self.degradation.index_rebuild_nodes += 1;
        }
    }

    /// Builds the event queue (arrivals + fault injections + rebalance
    /// checks) and drains it.
    fn run_events(&mut self) {
        let mut queue: EventQueue = BTreeMap::new();
        let njobs = self.scenario.len();
        let mut delay_ms = vec![0u64; njobs];
        for d in &self.plan.placement_delays {
            if d.job < njobs {
                delay_ms[d.job] += d.delay.as_millis();
            } else {
                self.degradation.faults_unapplied += 1;
            }
        }
        for (job, &(_, start)) in self.scenario.apps.iter().enumerate() {
            if delay_ms[job] > 0 {
                self.degradation.placements_delayed += 1;
                self.degradation.placement_delay_ms += delay_ms[job];
            }
            if self.scenario.is_classified() {
                // Declare the job's class and SLO at submission: the
                // anchor the oracle checks every later class event
                // (preempt, SLO report) for consistency against.
                let class = self.scenario.class_of(job);
                self.trace.record(
                    SimTime::from_millis(start.as_millis() + delay_ms[job]),
                    job as u64,
                    TraceData::SchedClassAssign {
                        job: job as u64,
                        crit: class.crit,
                        slo_ms: class.slo_ms,
                    },
                );
            }
            queue.insert(
                (start.as_millis() + delay_ms[job], CLASS_PLACE, job as u64),
                Event::Place { job, attempt: 0 },
            );
        }
        for (i, c) in self.plan.node_crashes.iter().enumerate() {
            if c.node < self.nodes.len() {
                queue.insert(
                    (c.at.as_millis(), CLASS_CRASH, i as u64),
                    Event::NodeCrash { node: c.node },
                );
            } else {
                self.degradation.faults_unapplied += 1;
            }
        }
        for (i, at) in self.plan.scheduler_restarts.iter().enumerate() {
            queue.insert((at.as_millis(), CLASS_RESTART, i as u64), Event::Restart);
        }
        for k in 1..=self.fleet.rebalance_checks {
            queue.insert(
                (
                    self.fleet.rebalance_period.as_millis() * k as u64,
                    CLASS_REBALANCE,
                    k as u64,
                ),
                Event::Rebalance { check: k },
            );
        }
        while let Some((&key, _)) = queue.iter().next() {
            let event = queue.remove(&key).expect("key just observed");
            let t = SimTime::from_millis(key.0);
            match event {
                Event::NodeCrash { node } => self.on_node_crash(node, t, &mut queue),
                Event::Restart => self.on_restart(t),
                Event::Place { job, attempt } => self.on_place(job, attempt, t, &mut queue),
                Event::Rebalance { check } => self.on_rebalance(check, t),
            }
        }
    }
}

type EventQueue = BTreeMap<(u64, u8, u64), Event>;

/// Runs `scenario` on the fleet described by `fleet`.
///
/// With `fleet.scheduler == false` this is exactly
/// [`crate::cluster::run_cluster`] over the fleet's node sizes: every node
/// runs the full schedule and per-app completion is the slowest node.
///
/// With the scheduler on (requires an M3 `setting` — placement reacts to
/// monitor pressure), each job is admitted onto one node, and the returned
/// [`ClusterResult`] holds final-node runtimes measured from each job's
/// *arrival*.
pub fn run_fleet(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
    fleet: &FleetConfig,
) -> FleetResult {
    run_fleet_with_faults(
        scenario,
        setting,
        machine_cfg,
        fleet,
        &FleetFaultPlan::none(),
    )
}

/// [`run_fleet`] under an injected [`FleetFaultPlan`]: node crashes,
/// flapping probe endpoints, delayed placements and scheduler restarts.
/// The returned [`FleetResult::degradation`] accounts what the faults
/// cost; [`FleetOracle`]'s recovery invariants run on every trace.
pub fn run_fleet_with_faults(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
    fleet: &FleetConfig,
    plan: &FleetFaultPlan,
) -> FleetResult {
    run_fleet_faulted_with_workers(
        scenario,
        setting,
        machine_cfg,
        fleet,
        plan,
        crate::parallel::worker_threads(),
    )
}

/// [`run_fleet`] with an explicit worker count. The result is bit-identical
/// for every `workers` value (the worker-count proptest pins this down);
/// the count only decides how many threads pre-warm node simulations and
/// run the final full-length node runs.
pub fn run_fleet_with_workers(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
    fleet: &FleetConfig,
    workers: usize,
) -> FleetResult {
    run_fleet_faulted_with_workers(
        scenario,
        setting,
        machine_cfg,
        fleet,
        &FleetFaultPlan::none(),
        workers,
    )
}

/// [`run_fleet_with_faults`] with an explicit worker count.
pub fn run_fleet_faulted_with_workers(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
    fleet: &FleetConfig,
    plan: &FleetFaultPlan,
    workers: usize,
) -> FleetResult {
    assert!(!fleet.nodes.is_empty(), "need at least one node");
    if !fleet.scheduler {
        assert!(
            plan.is_empty(),
            "fleet faults need the scheduler; passthrough mode has no \
             placement decisions to disrupt"
        );
        let node_cfgs = fleet
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| node_machine_cfg(machine_cfg, i, n.phys_total))
            .collect();
        let cluster = run_cluster_nodes(scenario, setting, node_cfgs);
        return FleetResult {
            cluster,
            jobs: Vec::new(),
            trace: TraceLog::new(),
            violations: Vec::new(),
            degradation: FleetDegradationReport::default(),
        };
    }
    assert!(
        setting.is_m3(),
        "the fleet scheduler places by monitor pressure; run static \
         baselines with `scheduler: false`"
    );
    let njobs = scenario.len();
    let mut state = Fleet::new(scenario, machine_cfg, fleet, plan, workers);
    state.run_events();

    // Final full-length run per non-empty node, in parallel via the node
    // cache; then fold per-job outcomes out of each job's final node.
    let finals: Vec<Option<Arc<ScenarioOutcome>>> =
        crate::parallel::parallel_map((0..state.nodes.len()).collect(), state.workers, |node| {
            (!state.nodes[node].apps.is_empty()).then(|| state.simulate(node, true))
        });

    let mut jobs = Vec::with_capacity(njobs);
    let mut app_runtimes_s = Vec::with_capacity(njobs);
    let mut failures = Vec::with_capacity(njobs);
    for job in 0..njobs {
        let arrival = SimTime::ZERO + scenario.apps[job].1;
        let class = scenario.class_of(job);
        let (node, runtime_ms, stall_ms, failure) = match state.assignment[job] {
            Some((node, slot)) => {
                let app = &finals[node].as_ref().expect("assigned node ran").run.apps[slot];
                let rt = (!app.killed && !app.failed)
                    .then_some(app.finished)
                    .flatten()
                    .map(|f| f.saturating_since(arrival).as_millis());
                let failure = if app.killed {
                    Some(JobFailure::Killed)
                } else if app.failed {
                    Some(JobFailure::Crashed)
                } else {
                    None
                };
                (Some(node), rt, app.stall.as_millis(), failure)
            }
            None if state.orphaned[job] => (None, None, 0, Some(JobFailure::NodeLost)),
            None => {
                debug_assert!(state.gave_up[job], "unassigned job must be resolved");
                (None, None, 0, Some(JobFailure::GaveUp))
            }
        };
        let runtime_s = runtime_ms.map(|ms| ms as f64 / 1000.0);
        let slo_met = runtime_ms.map(|ms| class.slo_ms == 0 || ms <= class.slo_ms);
        if scenario.is_classified() {
            if let (Some(ms), Some(met)) = (runtime_ms, slo_met) {
                // The job's SLO report, stamped at its completion instant;
                // the oracle re-derives `met` and the stall bound from it.
                state.trace.record(
                    arrival + SimDuration::from_millis(ms),
                    job as u64,
                    TraceData::SchedClassSlo {
                        job: job as u64,
                        crit: class.crit,
                        slo_ms: class.slo_ms,
                        runtime_ms: ms,
                        stall_ms,
                        met,
                    },
                );
            }
        }
        jobs.push(JobOutcome {
            job,
            node,
            deferrals: state.deferrals[job],
            migrations: state.migrations[job],
            reschedules: state.reschedules[job],
            failure,
            runtime_s,
            crit: class.crit,
            slo_ms: class.slo_ms,
            stall_ms,
            slo_met,
        });
        app_runtimes_s.push(runtime_s);
        failures.push(failure);
    }
    // No per-node runtime matrix in scheduler mode: it is O(jobs × nodes)
    // and the per-job outcomes above carry the same information.
    let cluster = ClusterResult {
        app_runtimes_s,
        per_node_s: Vec::new(),
        spread_s: Vec::new(),
        failures,
    };

    let mut violations = FleetOracle::new(fleet.grace.as_millis())
        .with_defer_interval(fleet.defer_interval.as_millis())
        .check(&state.trace);
    for out in finals.iter().flatten() {
        violations.extend(out.run.violations.iter().cloned());
    }
    FleetResult {
        cluster,
        jobs,
        trace: state.trace,
        violations,
        degradation: state.degradation,
    }
}

static FLEET_CACHE: MemoCache<FleetResult> = MemoCache::new();

/// Current totals of the fleet-level memoization cache (the node runs a
/// fleet performs are additionally memoized by the node cache,
/// [`crate::parallel::cache_stats`]).
pub fn fleet_cache_stats() -> CacheStats {
    FLEET_CACHE.stats()
}

/// Content-addressed [`run_fleet`]: the serialized `(scenario, setting,
/// machine_cfg, fleet_cfg, fault_plan)` quintuple keys a process-wide
/// cache, and an identical earlier fleet run is returned as a shared
/// [`Arc`] without re-running the scheduler. The machine config is
/// normalized through [`MachineConfig::with_setting`] before keying, like
/// the node cache. The fault plan is part of the key so chaos runs never
/// collide with clean cached results.
pub fn run_fleet_cached(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
    fleet: &FleetConfig,
) -> Arc<FleetResult> {
    run_fleet_cached_faulted(
        scenario,
        setting,
        machine_cfg,
        fleet,
        &FleetFaultPlan::none(),
    )
}

/// [`run_fleet_cached`] under an injected [`FleetFaultPlan`].
pub fn run_fleet_cached_faulted(
    scenario: &Scenario,
    setting: &Setting,
    machine_cfg: MachineConfig,
    fleet: &FleetConfig,
    plan: &FleetFaultPlan,
) -> Arc<FleetResult> {
    let cfg = machine_cfg.with_setting(setting);
    FLEET_CACHE.get_or_compute(&(scenario, setting, &cfg, fleet, plan), || {
        run_fleet_with_faults(scenario, setting, machine_cfg, fleet, plan)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::fleet_canonical;

    fn quick_cfg() -> MachineConfig {
        let mut cfg = MachineConfig::stock_64gb();
        cfg.sample_period = None;
        cfg.max_time = SimDuration::from_secs(40_000);
        cfg
    }

    fn small_fleet() -> FleetConfig {
        let mut f = FleetConfig::homogeneous(3, 64 * GIB);
        f.rebalance_checks = 10;
        f
    }

    #[test]
    fn demand_estimates_follow_the_job_specs() {
        assert_eq!(
            demand_estimate(AppKind::KMeans),
            hibench::kmeans().working_set + hibench::kmeans().exec_demand
        );
        assert_eq!(
            demand_estimate(AppKind::GoCache),
            hibench::gocache_workload().full_bytes()
        );
        assert!(demand_estimate(AppKind::NWeight) > demand_estimate(AppKind::KMeans));
    }

    #[test]
    fn arrivals_spread_across_empty_nodes() {
        // Three staggered k-means jobs on three empty nodes: each placement
        // reserves its demand on the chosen node, so the next arrival
        // prefers a still-empty node and the jobs spread out 0, 1, 2.
        let scenario = Scenario::uniform("MMM", 120);
        let res = run_fleet(&scenario, &Setting::m3(3), quick_cfg(), &small_fleet());
        let nodes: Vec<Option<usize>> = res.jobs.iter().map(|j| j.node).collect();
        assert_eq!(nodes, vec![Some(0), Some(1), Some(2)]);
        assert!(res.violations.is_empty(), "{:?}", res.violations);
        assert!(res.cluster.mean_runtime_secs().all_completed());
    }

    #[test]
    fn admission_defers_when_no_node_fits() {
        // Two n-weight jobs (47 GiB demand) on ONE 64-GiB node: the second
        // must defer until the first finishes, then run.
        let scenario = Scenario::uniform("WW", 0);
        let mut fleet = FleetConfig::homogeneous(1, 64 * GIB);
        fleet.rebalance_checks = 0;
        fleet.max_defers = 200; // keep retrying until the first W finishes
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fleet);
        assert_eq!(res.jobs[0].deferrals, 0);
        assert!(res.jobs[1].deferrals > 0, "second W must wait");
        assert_ne!(res.jobs[1].failure, Some(JobFailure::GaveUp));
        assert!(res.violations.is_empty(), "{:?}", res.violations);
    }

    #[test]
    fn give_up_is_reported_not_silent() {
        // One node, zero retries allowed: the second W is given up on and
        // says so, and the first still completes.
        let scenario = Scenario::uniform("WW", 0);
        let mut fleet = FleetConfig::homogeneous(1, 64 * GIB);
        fleet.max_defers = 0;
        fleet.rebalance_checks = 0;
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fleet);
        assert_eq!(res.jobs[1].failure, Some(JobFailure::GaveUp));
        assert_eq!(res.jobs[1].node, None);
        assert_eq!(res.cluster.app_runtimes_s[1], None);
        let mean = res.cluster.mean_runtime_secs();
        assert_eq!(mean.completed_apps, 1);
        assert_eq!(mean.failed_apps, 1);
        assert_eq!(mean.gave_up_apps, 1, "the failure reason is typed");
        assert!(
            res.trace
                .events()
                .iter()
                .any(|e| matches!(e.data, TraceData::FleetGiveUp { job: 1, .. })),
            "give-up must be in the placement log"
        );
        assert!(res.violations.is_empty(), "{:?}", res.violations);
    }

    #[test]
    fn heterogeneous_nodes_respect_their_own_tops() {
        // A small and a big node: n-weight (47 GiB) cannot fit on the 32-GiB
        // node (top ≈ 31 GiB), so it must land on the big one even though
        // both are empty and the small one has the lower index.
        let scenario = Scenario::uniform("W", 0);
        let mut fleet = FleetConfig::homogeneous(2, 32 * GIB);
        fleet.nodes[1] = NodeSpec {
            phys_total: 64 * GIB,
        };
        fleet.rebalance_checks = 0;
        let res = run_fleet(&scenario, &Setting::m3(1), quick_cfg(), &fleet);
        assert_eq!(res.jobs[0].node, Some(1));
        assert!(res.violations.is_empty(), "{:?}", res.violations);
    }

    #[test]
    fn passthrough_mode_emits_no_fleet_events() {
        let scenario = Scenario::uniform("M", 0);
        let res = run_fleet(
            &scenario,
            &Setting::m3(1),
            quick_cfg(),
            &FleetConfig::passthrough(2),
        );
        assert!(res.trace.is_empty());
        assert!(res.jobs.is_empty());
        assert_eq!(res.cluster.per_node_s[0].len(), 2);
    }

    #[test]
    fn idle_node_probes_never_simulate() {
        // An idle node's probe answers from the precomputed per-size
        // summary: no probe simulation is cached (or run) for it, and the
        // view is the idle state with nothing reserved.
        let scenario = Scenario::uniform("MM", 0);
        let fleet = small_fleet();
        let cfg = quick_cfg();
        let clean = FleetFaultPlan::none();
        let mut state = Fleet::new(&scenario, cfg, &fleet, &clean, 1);
        let v = state.probe(2, SimTime::from_millis(1_000));
        assert!(
            state.nodes[2].probe.is_none(),
            "idle probe must not allocate a scenario run"
        );
        assert_eq!(v.summary, state.idle[&(64 * GIB)]);
        assert_eq!(v.reserved, 0);
        assert_eq!(v.summary.used, 0);
        assert!(matches!(v.summary.zone, Zone::Green));
    }

    #[test]
    fn incremental_probes_match_whole_fleet_reprobing() {
        // Fleet `a` keeps whatever probe caches the scheduler run left
        // behind; fleet `b` ran identically but is then forced to
        // re-simulate every node from scratch. If dirty tracking ever
        // missed an invalidation, a cached view in `a` would diverge from
        // `b`'s fresh one.
        let scenario = fleet_canonical();
        let fleet = small_fleet();
        let cfg = quick_cfg();
        let clean = FleetFaultPlan::none();
        let mut a = Fleet::new(&scenario, cfg, &fleet, &clean, 1);
        a.run_events();
        let mut b = Fleet::new(&scenario, cfg, &fleet, &clean, 1);
        b.run_events();
        for node in 0..b.nodes.len() {
            b.nodes[node].probe = None; // whole-fleet re-probe
        }
        for node in 0..a.nodes.len() {
            for t_s in [0u64, 60, 600, 3_600, 20_000] {
                let t = SimTime::from_millis(t_s * 1000);
                assert_eq!(
                    a.view(node, t),
                    b.view(node, t),
                    "node {node} at {t_s}s: incremental view must equal re-probed view"
                );
            }
        }
    }

    #[test]
    fn fleet_cache_returns_shared_result() {
        let scenario = fleet_canonical();
        let cfg = quick_cfg();
        let fleet = small_fleet();
        let setting = Setting::m3(scenario.len());
        let before = fleet_cache_stats();
        let a = run_fleet_cached(&scenario, &setting, cfg, &fleet);
        let b = run_fleet_cached(&scenario, &setting, cfg, &fleet);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        let delta = fleet_cache_stats().since(&before);
        assert!(delta.hits >= 1);
        assert!(delta.misses >= 1);
    }

    #[test]
    fn fleet_config_is_part_of_the_cache_key() {
        let scenario = Scenario::uniform("M", 0);
        let cfg = quick_cfg();
        let setting = Setting::m3(1);
        let a = run_fleet_cached(&scenario, &setting, cfg, &small_fleet());
        let mut other = small_fleet();
        other.defer_interval = SimDuration::from_secs(99);
        let b = run_fleet_cached(&scenario, &setting, cfg, &other);
        assert!(
            !Arc::ptr_eq(&a, &b),
            "different fleet configs must not share a cache entry"
        );
    }

    #[test]
    #[should_panic(expected = "scheduler: false")]
    fn scheduler_mode_rejects_static_settings() {
        let scenario = Scenario::uniform("M", 0);
        run_fleet(
            &scenario,
            &Setting::default_for(1),
            quick_cfg(),
            &small_fleet(),
        );
    }

    #[test]
    fn broken_policy_is_caught_by_the_oracle() {
        // The blind policy places without ever probing node pressure; the
        // cluster oracle must flag every such placement.
        let scenario = Scenario::uniform("MM", 120);
        let mut fleet = FleetConfig::homogeneous(2, 64 * GIB);
        fleet.policy = PlacementPolicy::Blind;
        fleet.rebalance_checks = 0;
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fleet);
        assert!(res.jobs.iter().all(|j| j.node == Some(0)), "blind → node 0");
        let flagged = res
            .violations
            .iter()
            .filter(|v| v.invariant == "fleet.place.red")
            .count();
        assert_eq!(
            flagged, 2,
            "every probe-less placement must be flagged, got {:?}",
            res.violations
        );
    }

    #[test]
    fn red_node_triggers_migration_onto_the_idle_one() {
        // MostPressured co-locates both n-weight jobs on node 0, which
        // pushes it into the red zone; with an eager grace window the
        // rebalancer must migrate the newest job to the idle node. (The
        // adaptive thresholds chase usage within seconds, so red streaks
        // are transient — a zero grace window is what makes the check
        // deterministic; grace *enforcement* is covered by the oracle's
        // unit tests.)
        let scenario = Scenario::uniform("WW", 60);
        let mut fleet = FleetConfig::homogeneous(2, 64 * GIB);
        fleet.policy = PlacementPolicy::MostPressured;
        fleet.grace = SimDuration::ZERO;
        fleet.rebalance_period = SimDuration::from_secs(1);
        fleet.rebalance_checks = 150;
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fleet);
        assert_eq!(res.jobs[1].migrations, 1, "newest job is the victim");
        assert_eq!(res.jobs[1].node, Some(1), "it restarts on the idle node");
        assert_eq!(res.jobs[0].migrations, 0, "the older job stays put");
        assert!(res
            .trace
            .events()
            .iter()
            .any(|e| matches!(e.data, TraceData::FleetMigrate { .. })));
        assert!(
            res.violations.is_empty(),
            "an eager-grace migration is still conformant: {:?}",
            res.violations
        );
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        let scenario = fleet_canonical();
        let fleet = small_fleet();
        let cfg = quick_cfg();
        let setting = Setting::m3(scenario.len());
        let a = run_fleet_with_workers(&scenario, &setting, cfg, &fleet, 1);
        let b = run_fleet_with_workers(&scenario, &setting, cfg, &fleet, 4);
        assert_eq!(
            serde_json::to_string(&a).expect("serialize"),
            serde_json::to_string(&b).expect("serialize"),
            "fleet results must be bit-identical for any worker count"
        );
    }

    // ---- mixed criticality --------------------------------------------

    use crate::scenario::JobClass;

    #[test]
    fn latency_critical_preempts_batch_instead_of_starving() {
        // One 64-GiB node fully reserved by a Batch n-weight; a
        // latency-critical k-means arrives a minute later. Without
        // preemption the k-means would defer until the n-weight finishes;
        // with it, the batch job is evicted, re-queued, and the critical
        // job takes the node. Long victim backoff keeps the evicted batch
        // job from racing back onto the node before the critical one.
        let scenario = Scenario::uniform("WM", 60).with_classes(vec![
            JobClass::new(Criticality::Batch, 0),
            JobClass::new(Criticality::LatencyCritical, 0),
        ]);
        let mut fleet = FleetConfig::homogeneous(1, 64 * GIB);
        fleet.rebalance_checks = 0;
        fleet.max_defers = 200;
        fleet.backoff_base = SimDuration::from_secs(600);
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fleet);
        assert!(res.violations.is_empty(), "{:?}", res.violations);
        let preempts = res
            .trace
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.data,
                    TraceData::SchedClassPreempt {
                        job: 1,
                        victim: 0,
                        ..
                    }
                )
            })
            .count();
        assert!(preempts >= 1, "the critical job must preempt the batch one");
        assert_eq!(res.jobs[1].failure, None, "the critical job completes");
        assert_eq!(res.jobs[1].crit, Criticality::LatencyCritical);
        assert!(
            res.jobs[0].reschedules >= 1,
            "the batch victim re-enters the queue"
        );
        assert!(
            res.trace
                .events()
                .iter()
                .any(|e| matches!(e.data, TraceData::SchedClassAssign { job: 1, .. })),
            "classified jobs declare their class at submission"
        );
    }

    #[test]
    fn crit_blind_fleet_is_caught_by_the_oracle() {
        // The ablation evicts the latest-arriving resident regardless of
        // class: here a Standard job preempts the resident
        // latency-critical one, which the cluster oracle must flag. The
        // same scenario with class checks on is quietly conformant — the
        // Standard job simply waits its turn.
        let scenario = Scenario::uniform("WW", 60).with_classes(vec![
            JobClass::new(Criticality::LatencyCritical, 0),
            JobClass::new(Criticality::Standard, 0),
        ]);
        let mut fleet = FleetConfig::homogeneous(1, 64 * GIB);
        fleet.rebalance_checks = 0;
        fleet.max_defers = 200;
        fleet.crit_blind = true;
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fleet);
        assert!(
            res.violations
                .iter()
                .any(|v| v.invariant == "sched.class.preempt"),
            "a wrong-direction eviction must be flagged, got {:?}",
            res.violations
        );
        let mut fair = fleet.clone();
        fair.crit_blind = false;
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fair);
        assert!(res.violations.is_empty(), "{:?}", res.violations);
        assert!(
            !res.trace
                .events()
                .iter()
                .any(|e| matches!(e.data, TraceData::SchedClassPreempt { .. })),
            "a Standard job must not preempt a critical resident"
        );
    }

    #[test]
    fn migration_victim_is_the_most_expendable_resident() {
        // The co-location scenario of `red_node_triggers_migration`, with
        // classes: the *older* job is Standard, the newer one critical.
        // The class-aware rebalancer must invert the legacy
        // latest-arriving choice and move the more-expendable older job.
        let scenario = Scenario::uniform("WW", 60).with_classes(vec![
            JobClass::new(Criticality::Standard, 0),
            JobClass::new(Criticality::LatencyCritical, 0),
        ]);
        let mut fleet = FleetConfig::homogeneous(2, 64 * GIB);
        fleet.policy = PlacementPolicy::MostPressured;
        fleet.grace = SimDuration::ZERO;
        fleet.rebalance_period = SimDuration::from_secs(1);
        fleet.rebalance_checks = 150;
        let res = run_fleet(&scenario, &Setting::m3(2), quick_cfg(), &fleet);
        assert_eq!(res.jobs[0].migrations, 1, "the standard job is the victim");
        assert_eq!(res.jobs[1].migrations, 0, "the critical job stays put");
        assert!(res.violations.is_empty(), "{:?}", res.violations);
    }

    #[test]
    fn class_mean_slices_the_fleet_by_criticality() {
        // Three staggered k-means on three nodes: one critical with a
        // generous SLO, one standard, one batch. Every class completes,
        // and the per-class report accounts each slice separately.
        let scenario = Scenario::uniform("MMM", 120).with_classes(vec![
            JobClass::new(Criticality::LatencyCritical, 40_000_000),
            JobClass::new(Criticality::Standard, 0),
            JobClass::new(Criticality::Batch, 0),
        ]);
        let res = run_fleet(&scenario, &Setting::m3(3), quick_cfg(), &small_fleet());
        assert!(res.violations.is_empty(), "{:?}", res.violations);
        let mean = res.class_mean();
        assert_eq!(mean.classes.len(), 3, "one slice per populated class");
        let lc = mean.class(Criticality::LatencyCritical).expect("lc slice");
        assert_eq!((lc.jobs, lc.completed, lc.failed), (1, 1, 0));
        assert_eq!(lc.slo_jobs, 1);
        assert_eq!(lc.slo_met, 1, "a 40,000-second SLO holds trivially");
        let batch = mean.class(Criticality::Batch).expect("batch slice");
        assert_eq!(batch.slo_jobs, 0);
        assert_eq!(batch.slo_met, 1, "no SLO counts as met");
        assert!(res.trace.events().iter().any(|e| matches!(
            e.data,
            TraceData::SchedClassSlo {
                job: 0,
                met: true,
                ..
            }
        )));
    }

    // ---- fleet chaos --------------------------------------------------

    #[test]
    fn node_crash_reschedules_resident_jobs() {
        // One k-means job lands on node 0; the node dies a minute in. The
        // job must re-enter the queue, land elsewhere, and complete — with
        // the loss fully accounted in the degradation report.
        let scenario = Scenario::uniform("M", 0);
        let fleet = small_fleet();
        let plan = FleetFaultPlan::none().with_node_crash(SimDuration::from_secs(60), 0);
        let res = run_fleet_with_faults(&scenario, &Setting::m3(1), quick_cfg(), &fleet, &plan);
        assert!(res.violations.is_empty(), "{:?}", res.violations);
        assert_eq!(res.degradation.nodes_lost, 1);
        assert_eq!(res.degradation.jobs_lost, 1);
        assert_eq!(res.degradation.jobs_rescheduled, 1);
        assert_eq!(res.degradation.jobs_orphaned, 0);
        assert_eq!(res.jobs[0].reschedules, 1);
        assert_ne!(res.jobs[0].node, Some(0), "the dead node cannot host it");
        assert_eq!(res.jobs[0].failure, None, "the job completes elsewhere");
        assert!(res.jobs[0].runtime_s.is_some());
        assert!(res.trace.events().iter().any(|e| matches!(
            e.data,
            TraceData::FleetNodeLost {
                node: 0,
                jobs_lost: 1
            }
        )));
        assert!(res.trace.events().iter().any(|e| matches!(
            e.data,
            TraceData::FleetReschedule {
                job: 0,
                from: 0,
                requeued: true,
                ..
            }
        )));
    }

    #[test]
    fn zero_retry_budget_orphans_lost_jobs() {
        let scenario = Scenario::uniform("M", 0);
        let mut fleet = small_fleet();
        fleet.retry_budget = 0;
        let plan = FleetFaultPlan::none().with_node_crash(SimDuration::from_secs(60), 0);
        let res = run_fleet_with_faults(&scenario, &Setting::m3(1), quick_cfg(), &fleet, &plan);
        assert!(res.violations.is_empty(), "{:?}", res.violations);
        assert_eq!(res.degradation.jobs_orphaned, 1);
        assert_eq!(res.degradation.jobs_rescheduled, 0);
        assert_eq!(res.jobs[0].node, None);
        assert_eq!(res.jobs[0].failure, Some(JobFailure::NodeLost));
        let mean = res.cluster.mean_runtime_secs();
        assert_eq!(mean.node_lost_apps, 1);
        assert!(res.trace.events().iter().any(|e| matches!(
            e.data,
            TraceData::FleetReschedule {
                job: 0,
                requeued: false,
                ..
            }
        )));
        assert!(res
            .trace
            .events()
            .iter()
            .any(|e| matches!(e.data, TraceData::FleetGiveUp { job: 0, .. })));
    }

    #[test]
    fn flapping_node_is_quarantined_and_readmitted() {
        // Node 1's endpoint flaps for 1000 s with a 10 s stale window: the
        // rebalance sweep's forced re-reads quarantine it, and after the
        // flap ends its healthy probes re-admit it. The single job placed
        // at t=0 is unaffected.
        let scenario = Scenario::uniform("M", 0);
        let mut fleet = FleetConfig::homogeneous(2, 64 * GIB);
        fleet.stale_window = SimDuration::from_secs(10);
        fleet.quarantine_after = 1;
        fleet.quarantine_healthy = 3;
        fleet.rebalance_period = SimDuration::from_secs(60);
        fleet.rebalance_checks = 30;
        let plan = FleetFaultPlan::none().with_flap(
            1,
            SimDuration::from_secs(30),
            SimDuration::from_secs(1_000),
        );
        let res = run_fleet_with_faults(&scenario, &Setting::m3(1), quick_cfg(), &fleet, &plan);
        assert!(res.violations.is_empty(), "{:?}", res.violations);
        assert_eq!(res.degradation.quarantine_episodes, 1);
        assert!(res.degradation.probe_failures > 0);
        let entered = res.trace.events().iter().any(|e| {
            matches!(
                e.data,
                TraceData::FleetQuarantine {
                    node: 1,
                    entered: true,
                    ..
                }
            )
        });
        let exited = res.trace.events().iter().any(|e| {
            matches!(
                e.data,
                TraceData::FleetQuarantine {
                    node: 1,
                    entered: false,
                    ..
                }
            )
        });
        assert!(entered, "the flapping node must be quarantined");
        assert!(exited, "healthy probes after the flap must re-admit it");
        assert_eq!(res.jobs[0].failure, None);
    }

    #[test]
    fn stale_probes_are_tolerated_inside_the_window() {
        // Both nodes flap from t=0, but the stale window is generous: every
        // read is served from the flap-start summary, nothing fails, and
        // nothing is quarantined.
        let scenario = Scenario::uniform("M", 0);
        let mut fleet = FleetConfig::homogeneous(2, 64 * GIB);
        fleet.stale_window = SimDuration::from_secs(10_000);
        fleet.rebalance_checks = 5;
        let plan = FleetFaultPlan::none()
            .with_flap(0, SimDuration::ZERO, SimDuration::from_secs(1_000))
            .with_flap(1, SimDuration::ZERO, SimDuration::from_secs(1_000));
        let res = run_fleet_with_faults(&scenario, &Setting::m3(1), quick_cfg(), &fleet, &plan);
        assert!(res.violations.is_empty(), "{:?}", res.violations);
        assert!(res.degradation.stale_probe_decisions > 0);
        assert_eq!(res.degradation.probe_failures, 0);
        assert_eq!(res.degradation.quarantine_episodes, 0);
        assert_eq!(res.jobs[0].failure, None);
    }

    #[test]
    fn scheduler_restart_rebuilds_the_index() {
        let scenario = fleet_canonical();
        let fleet = small_fleet();
        let plan = FleetFaultPlan::none().with_scheduler_restart(SimDuration::from_secs(300));
        let setting = Setting::m3(scenario.len());
        let res = run_fleet_with_faults(&scenario, &setting, quick_cfg(), &fleet, &plan);
        assert!(res.violations.is_empty(), "{:?}", res.violations);
        assert_eq!(res.degradation.scheduler_restarts, 1);
        assert_eq!(
            res.degradation.index_rebuild_nodes, 3,
            "every live node re-enters the rebuilt index"
        );
        assert!(res.jobs.iter().all(|j| j.failure.is_none()));
    }

    #[test]
    fn delayed_placement_shifts_the_arrival() {
        let scenario = Scenario::uniform("M", 0);
        let fleet = small_fleet();
        let setting = Setting::m3(1);
        let clean = run_fleet(&scenario, &setting, quick_cfg(), &fleet);
        let plan = FleetFaultPlan::none().with_placement_delay(0, SimDuration::from_secs(60));
        let res = run_fleet_with_faults(&scenario, &setting, quick_cfg(), &fleet, &plan);
        assert!(res.violations.is_empty(), "{:?}", res.violations);
        assert_eq!(res.degradation.placements_delayed, 1);
        assert_eq!(res.degradation.placement_delay_ms, 60_000);
        let (clean_rt, delayed_rt) = (
            clean.jobs[0].runtime_s.expect("clean run completes"),
            res.jobs[0].runtime_s.expect("delayed run completes"),
        );
        assert!(
            delayed_rt > clean_rt,
            "runtime counts from arrival, so the delay shows: {clean_rt} vs {delayed_rt}"
        );
    }

    #[test]
    fn fault_plan_is_part_of_the_fleet_cache_key() {
        let scenario = Scenario::uniform("M", 0);
        let cfg = quick_cfg();
        let setting = Setting::m3(1);
        let fleet = small_fleet();
        let clean = run_fleet_cached(&scenario, &setting, cfg, &fleet);
        let plan = FleetFaultPlan::none().with_node_crash(SimDuration::from_secs(60), 0);
        let chaotic = run_fleet_cached_faulted(&scenario, &setting, cfg, &fleet, &plan);
        assert!(
            !Arc::ptr_eq(&clean, &chaotic),
            "a chaos run must never collide with a clean cached result"
        );
        assert_eq!(clean.degradation.nodes_lost, 0);
        assert_eq!(chaotic.degradation.nodes_lost, 1);
        let again = run_fleet_cached_faulted(&scenario, &setting, cfg, &fleet, &plan);
        assert!(
            Arc::ptr_eq(&chaotic, &again),
            "the same fault plan must hit its own cache entry"
        );
    }

    #[test]
    fn unknown_fault_targets_are_counted_not_applied() {
        let scenario = Scenario::uniform("M", 0);
        let fleet = small_fleet();
        let setting = Setting::m3(1);
        let plan = FleetFaultPlan::none()
            .with_node_crash(SimDuration::from_secs(60), 99)
            .with_flap(99, SimDuration::ZERO, SimDuration::from_secs(60))
            .with_placement_delay(99, SimDuration::from_secs(60));
        let clean = run_fleet(&scenario, &setting, quick_cfg(), &fleet);
        let res = run_fleet_with_faults(&scenario, &setting, quick_cfg(), &fleet, &plan);
        assert_eq!(res.degradation.faults_unapplied, 3);
        assert_eq!(
            serde_json::to_string(&res.jobs).expect("serialize"),
            serde_json::to_string(&clean.jobs).expect("serialize"),
            "out-of-range faults must not perturb the schedule"
        );
    }

    #[test]
    fn migration_fault_plans_round_trip_through_serde() {
        // The migration test's co-location scenario leaves a crash fault
        // on the source node; the accumulated per-node `FaultPlan`s must
        // survive serde round trips (they feed the content-addressed node
        // cache key).
        let scenario = Scenario::uniform("WW", 60);
        let mut fleet = FleetConfig::homogeneous(2, 64 * GIB);
        fleet.policy = PlacementPolicy::MostPressured;
        fleet.grace = SimDuration::ZERO;
        fleet.rebalance_period = SimDuration::from_secs(1);
        fleet.rebalance_checks = 150;
        let clean = FleetFaultPlan::none();
        let mut state = Fleet::new(&scenario, quick_cfg(), &fleet, &clean, 1);
        state.run_events();
        let with_faults: Vec<&FaultPlan> = state
            .nodes
            .iter()
            .map(|n| &n.faults)
            .filter(|f| !f.is_empty())
            .collect();
        assert!(
            !with_faults.is_empty(),
            "the migration must leave a crash fault on the source node"
        );
        for plan in with_faults {
            let back = FaultPlan::deserialize(&plan.serialize()).expect("round trip");
            assert_eq!(*plan, back);
        }
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let scenario = fleet_canonical();
        let fleet = small_fleet();
        let setting = Setting::m3(scenario.len());
        let plan = FleetFaultPlan::none()
            .with_node_crash(SimDuration::from_secs(120), 1)
            .with_flap(0, SimDuration::from_secs(60), SimDuration::from_secs(600))
            .with_placement_delay(2, SimDuration::from_secs(30))
            .with_scheduler_restart(SimDuration::from_secs(240));
        let a = run_fleet_faulted_with_workers(&scenario, &setting, quick_cfg(), &fleet, &plan, 1);
        let b = run_fleet_faulted_with_workers(&scenario, &setting, quick_cfg(), &fleet, &plan, 4);
        assert_eq!(
            serde_json::to_string(&a).expect("serialize"),
            serde_json::to_string(&b).expect("serialize"),
            "chaos results must be bit-identical for any worker count"
        );
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(
            a.degradation.jobs_lost,
            a.degradation.jobs_rescheduled + a.degradation.jobs_orphaned,
            "every lost job is accounted"
        );
    }
}
