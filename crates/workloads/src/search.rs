//! Bounded configuration search (standing in for the paper's 3,400 tests).
//!
//! The paper spent four months sweeping JVM heap sizes, `GOGC`, and the two
//! Spark memory parameters to find the Globally Optimal, Oracle, and
//! Oracle-with-Spark-configuration settings. Here the sweep is a
//! deterministic coordinate descent over a bounded grid: one configuration
//! per application *kind* (the paper's repeated jobs share settings),
//! improved one knob at a time until a pass makes no progress.

use std::collections::BTreeMap;

use m3_framework::SparkConfig;
use m3_sim::units::GIB;

use crate::machine::MachineConfig;
use crate::parallel::{cache_stats, parallel_map, run_scenario_cached, worker_threads};
use crate::scenario::Scenario;
use crate::settings::{AppConfig, Setting, SettingKind};

/// The grids each knob is searched over.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// JVM heap sizes (`-Xmx`).
    pub heaps: Vec<u64>,
    /// `GOGC` values.
    pub gogcs: Vec<u64>,
    /// Static cache sizes for the cache apps.
    pub cache_sizes: Vec<u64>,
    /// `spark.memory.fraction` values (OWS only).
    pub mem_fractions: Vec<f64>,
    /// `spark.memory.storageFraction` values (OWS only).
    pub storage_fractions: Vec<f64>,
}

impl SearchSpace {
    /// The full evaluation grid.
    pub fn paper() -> Self {
        SearchSpace {
            heaps: [8u64, 12, 16, 20, 24, 28, 32, 40, 48]
                .iter()
                .map(|g| g * GIB)
                .collect(),
            gogcs: vec![25, 50, 100, 200, 400],
            cache_sizes: [8u64, 12, 16, 20, 24, 32, 40, 46]
                .iter()
                .map(|g| g * GIB)
                .collect(),
            mem_fractions: vec![0.4, 0.6, 0.75, 0.9],
            storage_fractions: vec![0.3, 0.5, 0.7, 0.9],
        }
    }

    /// A small grid for tests.
    pub fn quick() -> Self {
        SearchSpace {
            heaps: [8u64, 16, 24].iter().map(|g| g * GIB).collect(),
            gogcs: vec![100, 400],
            cache_sizes: [8u64, 16].iter().map(|g| g * GIB).collect(),
            mem_fractions: vec![0.6, 0.9],
            storage_fractions: vec![0.5],
        }
    }
}

/// Per-kind configurations resolved into a per-app [`Setting`].
pub fn setting_from_kinds(
    kind: SettingKind,
    per_kind: &BTreeMap<char, AppConfig>,
    scenario: &Scenario,
) -> Setting {
    let per_app = scenario
        .apps
        .iter()
        .map(|(k, _)| {
            per_kind
                .get(&k.code())
                .copied()
                .unwrap_or_else(AppConfig::stock_default)
        })
        .collect();
    Setting { kind, per_app }
}

fn eval(
    per_kind: &BTreeMap<char, AppConfig>,
    kind: SettingKind,
    scenarios: &[Scenario],
    cfg: MachineConfig,
) -> f64 {
    scenarios
        .iter()
        .map(|s| run_scenario_cached(s, &setting_from_kinds(kind, per_kind, s), cfg).score())
        .sum::<f64>()
        / scenarios.len() as f64
}

/// A heap-proportional seed: give each kind a heap proportional to its
/// appetite, normalized to fit the node.
fn seed_configs(scenarios: &[Scenario]) -> BTreeMap<char, AppConfig> {
    let mut map = BTreeMap::new();
    for s in scenarios {
        for &(k, _) in &s.apps {
            map.entry(k.code()).or_insert_with(AppConfig::stock_default);
        }
    }
    map
}

/// Coordinate-descent search over per-kind knobs.
///
/// `tune_spark` adds the two Spark parameters (the OWS regime). Returns the
/// best per-kind configurations and their score (mean of per-workload
/// scores). The search is deterministic: ties keep the incumbent.
pub fn search(
    scenarios: &[Scenario],
    space: &SearchSpace,
    setting_kind: SettingKind,
    tune_spark: bool,
    cfg: MachineConfig,
) -> (BTreeMap<char, AppConfig>, f64) {
    assert!(!scenarios.is_empty(), "need at least one scenario");
    let cache_before = cache_stats();
    let mut best = seed_configs(scenarios);
    let mut best_score = eval(&best, setting_kind, scenarios, cfg);
    let kinds: Vec<char> = best.keys().copied().collect();
    let analytics = |c: char| matches!(c, 'M' | 'P' | 'W');

    // Up to three passes; stop early when a whole pass makes no progress.
    for _ in 0..3 {
        let mut improved = false;
        for &kc in &kinds {
            // Knob 1: heap (analytics) or cache size (caches).
            let candidates: Vec<AppConfig> = if analytics(kc) {
                space
                    .heaps
                    .iter()
                    .map(|&h| AppConfig {
                        heap: h,
                        ..best[&kc]
                    })
                    .collect()
            } else {
                space
                    .cache_sizes
                    .iter()
                    .map(|&b| AppConfig {
                        cache_bytes: b,
                        ..best[&kc]
                    })
                    .collect()
            };
            improved |= try_candidates(
                &mut best,
                &mut best_score,
                kc,
                candidates,
                setting_kind,
                scenarios,
                cfg,
            );

            // Knob 2: GOGC for cache kinds.
            if !analytics(kc) {
                let candidates: Vec<AppConfig> = space
                    .gogcs
                    .iter()
                    .map(|&g| AppConfig {
                        gogc: g,
                        ..best[&kc]
                    })
                    .collect();
                improved |= try_candidates(
                    &mut best,
                    &mut best_score,
                    kc,
                    candidates,
                    setting_kind,
                    scenarios,
                    cfg,
                );
            }

            // Knobs 3+4: Spark memory parameters (OWS). These interact
            // strongly with the heap size (capacity = share x heap), so the
            // sweep is joint over (heap, fraction, storageFraction) —
            // separate passes get trapped in thrash-avoidance corners.
            if tune_spark && analytics(kc) {
                let mut candidates = Vec::new();
                for &h in &space.heaps {
                    for &mf in &space.mem_fractions {
                        for &sf in &space.storage_fractions {
                            candidates.push(AppConfig {
                                heap: h,
                                spark: SparkConfig {
                                    memory_fraction: mf,
                                    storage_fraction: sf,
                                    ..best[&kc].spark
                                },
                                ..best[&kc]
                            });
                        }
                    }
                }
                improved |= try_candidates(
                    &mut best,
                    &mut best_score,
                    kc,
                    candidates,
                    setting_kind,
                    scenarios,
                    cfg,
                );
            }
        }
        if !improved {
            break;
        }
    }
    let delta = cache_stats().since(&cache_before);
    eprintln!(
        "search[{}]: {} run lookups, memoization hit rate {:.0}%",
        setting_kind.label(),
        delta.hits + delta.misses,
        delta.hit_rate() * 100.0
    );
    (best, best_score)
}

fn try_candidates(
    best: &mut BTreeMap<char, AppConfig>,
    best_score: &mut f64,
    kind: char,
    candidates: Vec<AppConfig>,
    setting_kind: SettingKind,
    scenarios: &[Scenario],
    cfg: MachineConfig,
) -> bool {
    let candidates: Vec<AppConfig> = candidates
        .into_iter()
        .filter(|c| *c != best[&kind])
        .collect();
    if candidates.is_empty() {
        return false;
    }
    // Every candidate is evaluated against the same snapshot, in parallel.
    // This is *exactly* the sequential accept-if-improves loop: evaluation
    // is pure, and each trial map differs from the incumbent only in
    // `kind`'s entry — the one entry the trial overwrites — so an accept
    // mid-loop could not have changed any later trial. Accepting in
    // submission order below preserves the sequential tie-breaking (ties
    // keep the earliest winner, the incumbent keeps ties overall).
    let snapshot = best.clone();
    let scores = parallel_map(candidates.clone(), worker_threads(), |cand| {
        let mut trial = snapshot.clone();
        trial.insert(kind, cand);
        eval(&trial, setting_kind, scenarios, cfg)
    });
    let mut improved = false;
    for (cand, score) in candidates.into_iter().zip(scores) {
        if score < *best_score {
            best.insert(kind, cand);
            *best_score = score;
            improved = true;
        }
    }
    improved
}

/// Searches the Oracle setting for one workload.
pub fn search_oracle(scenario: &Scenario, space: &SearchSpace, cfg: MachineConfig) -> Setting {
    let (per_kind, _) = search(
        std::slice::from_ref(scenario),
        space,
        SettingKind::Oracle,
        false,
        cfg,
    );
    setting_from_kinds(SettingKind::Oracle, &per_kind, scenario)
}

/// Searches the Oracle-with-Spark-configuration setting for one workload.
pub fn search_ows(scenario: &Scenario, space: &SearchSpace, cfg: MachineConfig) -> Setting {
    let (per_kind, _) = search(
        std::slice::from_ref(scenario),
        space,
        SettingKind::OracleWithSpark,
        true,
        cfg,
    );
    setting_from_kinds(SettingKind::OracleWithSpark, &per_kind, scenario)
}

/// Searches the Globally Optimal per-kind configuration across many
/// workloads, returning the per-kind map (resolve per scenario with
/// [`setting_from_kinds`]).
pub fn search_global(
    scenarios: &[Scenario],
    space: &SearchSpace,
    cfg: MachineConfig,
) -> BTreeMap<char, AppConfig> {
    let (per_kind, _) = search(scenarios, space, SettingKind::GloballyOptimal, true, cfg);
    per_kind
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_scenario;
    use m3_sim::clock::SimDuration;

    fn quick_machine() -> MachineConfig {
        let mut cfg = MachineConfig::stock_64gb();
        cfg.sample_period = None;
        cfg.max_time = SimDuration::from_secs(20_000);
        cfg
    }

    #[test]
    fn oracle_beats_or_matches_default_on_a_small_workload() {
        let scenario = Scenario::uniform("MM", 60);
        let space = SearchSpace::quick();
        let oracle = search_oracle(&scenario, &space, quick_machine());
        let default = Setting::default_for(scenario.len());
        let o = run_scenario(&scenario, &oracle, quick_machine()).score();
        let d = run_scenario(&scenario, &default, quick_machine()).score();
        assert!(o <= d, "oracle {o} must not be worse than default {d}");
    }

    #[test]
    fn search_finds_runnable_config_for_nweight() {
        // Default (16 GiB) cannot run n-weight; the search must pick a
        // bigger heap.
        let scenario = Scenario::uniform("W", 0);
        let oracle = search_oracle(&scenario, &SearchSpace::quick(), quick_machine());
        assert!(oracle.per_app[0].heap > 16 * GIB);
        let out = run_scenario(&scenario, &oracle, quick_machine());
        assert!(out.mean_runtime_secs().is_some(), "found config must run");
    }

    #[test]
    fn setting_from_kinds_aligns_with_scenario() {
        let scenario = Scenario::uniform("MCM", 0);
        let mut per_kind = BTreeMap::new();
        per_kind.insert(
            'M',
            AppConfig {
                heap: 24 * GIB,
                ..AppConfig::stock_default()
            },
        );
        let s = setting_from_kinds(SettingKind::Oracle, &per_kind, &scenario);
        assert_eq!(s.per_app.len(), 3);
        assert_eq!(s.per_app[0].heap, 24 * GIB);
        assert_eq!(s.per_app[2].heap, 24 * GIB);
        // Unknown kinds fall back to stock defaults.
        assert_eq!(s.per_app[1].heap, 16 * GIB);
    }
}
