//! Key-granular cache-trace sweep (ROADMAP item 1).
//!
//! One [`run_cache_trace`] is one Memcached server driven by a
//! production-shaped trace ([`TraceWorkload`]: Zipf popularity over millions
//! of keys, tiered value sizes, a 90/7/3 GET/SET/DELETE mix) on a node sized
//! so the full working set does **not** fit — the paper's production-cache
//! setting. Three policies compete on identical traffic:
//!
//! - **M3** — unbounded cache plus the monitor: Table 1 slab eviction (1 %
//!   low / 4 % high) and the §4.2 adaptive allocation protocol keep the
//!   server inside physical memory.
//! - **Default** — unbounded cache, no monitor: the server grows until the
//!   kernel swaps and the OOM killer fires (the stock failure mode).
//! - **StaticLimit** — a best-effort static cache cap well under physical
//!   memory: safe, but the capacity it surrenders shows up as misses.
//!
//! Runs are memoized content-addressed on `(workload, policy)` exactly like
//! the scenario harness ([`crate::parallel`]), so sweeps and repeated bench
//! invocations replay for free, and the outcome is a pure serializable
//! function of its inputs (the determinism test compares worker counts by
//! serialized bytes).

use std::sync::Arc;

use m3_cache::{KeyedSlabCache, TraceWorkload};
use m3_sim::clock::SimDuration;
use m3_sim::trace::{EvictReason, TraceData};
use serde::{Deserialize, Serialize};

use crate::apps::AppBlueprint;
use crate::machine::{Machine, MachineConfig};
use crate::parallel::{CacheStats, MemoCache};

/// Fraction of the chunked working set the node's physical memory covers:
/// small enough that every policy is under real pressure — the footprint a
/// Zipf(1.2) trace actually touches (preload plus on-demand miss fills)
/// lands near 40 % of the full working set, so at 30 % even the touched set
/// overhangs physical memory and swap — yet large enough that the Zipf head
/// fits and hit ratios stay meaningful.
const PHYS_FRACTION_PCT: u64 = 30;

/// Fraction of physical memory a best-effort static cache cap takes (the
/// operator leaves headroom for everything else on the node).
const STATIC_CAP_PCT: u64 = 45;

/// How the cache is allowed to use memory in a trace run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CachePolicy {
    /// Unbounded cache + M3 monitor (signal-driven slab eviction).
    M3,
    /// Unbounded cache, no monitor: stock memcached headed for the OOM
    /// killer on an over-committed node.
    Default,
    /// Static cache cap at [`STATIC_CAP_PCT`] of physical memory.
    StaticLimit,
}

impl CachePolicy {
    /// All policies, in reporting order.
    pub const ALL: [CachePolicy; 3] = [
        CachePolicy::M3,
        CachePolicy::Default,
        CachePolicy::StaticLimit,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CachePolicy::M3 => "m3",
            CachePolicy::Default => "default",
            CachePolicy::StaticLimit => "static-limit",
        }
    }
}

/// Outcome of one trace run: the last `cache.stats` snapshot the server
/// emitted (the final one for completed runs, the last periodic one for
/// killed runs), eviction totals by reason, and the run verdict. A pure
/// serializable function of `(workload, policy)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheTraceOutcome {
    /// The policy that ran.
    pub policy: CachePolicy,
    /// The trace workload (keys, ops, skew, pattern, seed).
    pub workload: TraceWorkload,
    /// Physical memory of the node, bytes.
    pub phys_bytes: u64,
    /// The static cache cap, when one applied.
    pub cache_cap_bytes: Option<u64>,
    /// Requests completed (equals `workload.total_ops` unless killed).
    pub requests: u64,
    /// GET hits.
    pub hits: u64,
    /// GET misses (including negative lookups).
    pub misses: u64,
    /// Negative lookups among the misses.
    pub negative: u64,
    /// SETs applied.
    pub sets: u64,
    /// DELETEs applied.
    pub deletes: u64,
    /// Inserts delayed by the §4.2 adaptive allocation protocol.
    pub delayed: u64,
    /// Items recycled by capacity pressure (static caps).
    pub capacity_items: u64,
    /// Live items at the last snapshot.
    pub live_items: u64,
    /// Resident cache bytes at the last snapshot.
    pub resident_bytes: u64,
    /// Simulated serve time at the last snapshot, ms.
    pub serve_ms: u64,
    /// Slabs evicted on low signals (Table 1: 1 %).
    pub evict_slabs_low: u64,
    /// Slabs evicted on high signals (Table 1: 4 %).
    pub evict_slabs_high: u64,
    /// Slabs clawed back by the admission-delay path.
    pub evict_slabs_admission: u64,
    /// Per-class eviction detail events recorded (key-granular runs only).
    pub class_evictions: u64,
    /// True if the server completed the whole trace.
    pub finished: bool,
    /// True if the server was killed (OOM or M3 escalation).
    pub killed: bool,
    /// Peak resident set size observed, bytes.
    pub peak_rss: u64,
    /// End of the run, simulated ms.
    pub end_ms: u64,
    /// Conformance-oracle violations found in the run's trace.
    pub violations: usize,
    /// First few violation descriptions, for diagnostics.
    pub violation_samples: Vec<String>,
}

impl CacheTraceOutcome {
    /// GET hit ratio in `[0, 1]` (0 when no GETs completed).
    pub fn hit_ratio(&self) -> f64 {
        let gets = self.hits + self.misses;
        if gets == 0 {
            0.0
        } else {
            self.hits as f64 / gets as f64
        }
    }
}

/// Exact chunked bytes of the full key space: every key resident in its
/// slab class at once. The sizing anchor for [`node_phys_bytes`].
pub fn working_set_bytes(twl: &TraceWorkload) -> u64 {
    // A probe store supplies the chunk-class geometry; nothing is inserted.
    let probe = KeyedSlabCache::new(u64::MAX / 2);
    (0..twl.key_space)
        .map(|key| probe.chunk_bytes_for(twl.value_bytes(twl.fp_of(key))))
        .sum()
}

/// Physical memory for the trace node: [`PHYS_FRACTION_PCT`] of the chunked
/// working set, so no policy can simply hold everything.
pub fn node_phys_bytes(twl: &TraceWorkload) -> u64 {
    working_set_bytes(twl) * PHYS_FRACTION_PCT / 100
}

fn blueprint(twl: TraceWorkload, policy: CachePolicy, phys: u64) -> (AppBlueprint, Option<u64>) {
    match policy {
        CachePolicy::M3 => (
            AppBlueprint::TraceCache {
                workload: twl,
                max_bytes: 0,
                m3_mode: true,
            },
            None,
        ),
        CachePolicy::Default => (
            AppBlueprint::TraceCache {
                workload: twl,
                max_bytes: u64::MAX / 2,
                m3_mode: false,
            },
            None,
        ),
        CachePolicy::StaticLimit => {
            let cap = phys * STATIC_CAP_PCT / 100;
            (
                AppBlueprint::TraceCache {
                    workload: twl,
                    max_bytes: cap,
                    m3_mode: false,
                },
                Some(cap),
            )
        }
    }
}

/// Runs one `(workload, policy)` point uncached.
pub fn run_cache_trace(twl: TraceWorkload, policy: CachePolicy) -> CacheTraceOutcome {
    twl.validate();
    let phys = node_phys_bytes(&twl);
    let (bp, cap) = blueprint(twl, policy, phys);
    let mut cfg = MachineConfig::scaled(phys, policy == CachePolicy::M3);
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(60_000);
    let res = Machine::new(cfg).run(vec![("memcached-trace".into(), SimDuration::ZERO, bp)]);

    // The last cache.stats snapshot: final for completed runs, the last
    // periodic one for runs the kernel killed mid-trace.
    let mut out = CacheTraceOutcome {
        policy,
        workload: twl,
        phys_bytes: phys,
        cache_cap_bytes: cap,
        requests: 0,
        hits: 0,
        misses: 0,
        negative: 0,
        sets: 0,
        deletes: 0,
        delayed: 0,
        capacity_items: 0,
        live_items: 0,
        resident_bytes: 0,
        serve_ms: 0,
        evict_slabs_low: 0,
        evict_slabs_high: 0,
        evict_slabs_admission: 0,
        class_evictions: 0,
        finished: res.apps[0].finished.is_some(),
        killed: res.apps[0].killed,
        peak_rss: res.apps[0].peak_rss,
        end_ms: res.end.as_millis(),
        violations: res.violations.len(),
        violation_samples: res
            .violations
            .iter()
            .take(3)
            .map(|v| format!("{}: {}", v.invariant, v.message))
            .collect(),
    };
    for e in res.trace.events() {
        match &e.data {
            TraceData::CacheStats {
                requests,
                hits,
                misses,
                negative,
                sets,
                deletes,
                delayed,
                capacity_items,
                resident_bytes,
                live_items,
                serve_ms,
            } => {
                out.requests = *requests;
                out.hits = *hits;
                out.misses = *misses;
                out.negative = *negative;
                out.sets = *sets;
                out.deletes = *deletes;
                out.delayed = *delayed;
                out.capacity_items = *capacity_items;
                out.resident_bytes = *resident_bytes;
                out.live_items = *live_items;
                out.serve_ms = *serve_ms;
            }
            TraceData::EvictSlabs {
                evicted, reason, ..
            } => match reason {
                EvictReason::LowSignal => out.evict_slabs_low += evicted,
                EvictReason::HighSignal => out.evict_slabs_high += evicted,
                EvictReason::AdmissionDelay => out.evict_slabs_admission += evicted,
                _ => {}
            },
            TraceData::EvictClass { .. } => out.class_evictions += 1,
            _ => {}
        }
    }
    out
}

static CACHE: MemoCache<CacheTraceOutcome> = MemoCache::new();

/// Current totals of the trace-run memoization cache.
pub fn kvtrace_cache_stats() -> CacheStats {
    CACHE.stats()
}

/// [`run_cache_trace`], content-addressed on `(workload, policy)`: an
/// identical earlier run is returned as a shared [`Arc`] without
/// re-simulating.
pub fn run_cache_trace_cached(twl: TraceWorkload, policy: CachePolicy) -> Arc<CacheTraceOutcome> {
    CACHE.get_or_compute(&(&twl, policy), || run_cache_trace(twl, policy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_cache::TrafficPattern;
    use m3_sim::units::{GIB, MIB};

    fn tiny(pattern: TrafficPattern) -> TraceWorkload {
        TraceWorkload {
            key_space: 30_000,
            total_ops: 200_000,
            phase_ops: 50_000,
            ..TraceWorkload::smoke(pattern)
        }
    }

    #[test]
    fn working_set_sizing_is_sane() {
        let twl = tiny(TrafficPattern::Steady);
        let ws = working_set_bytes(&twl);
        // 30k keys at a few KiB mean chunked size.
        assert!(ws > 30_000 * 128, "ws {ws}");
        assert!(ws < 30_000 * MIB, "ws {ws}");
        let phys = node_phys_bytes(&twl);
        assert!(phys < ws, "the working set must overhang physical memory");
        assert!(phys > ws / 4);
    }

    #[test]
    fn m3_point_completes_under_pressure_with_zero_violations() {
        let out = run_cache_trace(tiny(TrafficPattern::Steady), CachePolicy::M3);
        assert!(out.finished, "M3 keeps the server alive: {out:?}");
        assert!(!out.killed);
        assert_eq!(out.requests, 200_000);
        assert_eq!(
            out.violations, 0,
            "oracle-clean: {:?}",
            out.violation_samples
        );
        assert!(
            out.evict_slabs_low + out.evict_slabs_high > 0,
            "pressure must trigger signal-driven eviction: {out:?}"
        );
        assert!(out.class_evictions > 0, "key-granular class detail");
        assert!(out.hit_ratio() > 0.5, "Zipf head stays resident: {out:?}");
        assert!(out.peak_rss <= out.phys_bytes + GIB / 4);
    }

    #[test]
    fn static_limit_point_respects_its_cap() {
        let out = run_cache_trace(tiny(TrafficPattern::Steady), CachePolicy::StaticLimit);
        assert!(out.finished && !out.killed, "{out:?}");
        assert_eq!(out.violations, 0, "{:?}", out.violation_samples);
        let cap = out.cache_cap_bytes.unwrap();
        assert!(out.resident_bytes <= cap, "{out:?}");
        assert!(out.capacity_items > 0, "cap forces LRU recycling: {out:?}");
        assert_eq!(out.evict_slabs_low + out.evict_slabs_high, 0, "no monitor");
    }

    #[test]
    fn default_policy_overcommits() {
        let out = run_cache_trace(tiny(TrafficPattern::Steady), CachePolicy::Default);
        assert_eq!(out.violations, 0, "{:?}", out.violation_samples);
        // Stock with no cap on an overcommitted node: either the OOM killer
        // fired, or swap thrash let it limp through with the full working
        // set resident beyond physical memory.
        assert!(
            out.killed || out.peak_rss > out.phys_bytes,
            "unbounded stock cache must overcommit: {out:?}"
        );
        // Either way some progress was recorded via periodic snapshots.
        assert!(out.requests > 0, "{out:?}");
    }

    #[test]
    fn memoized_run_is_shared_and_identical() {
        let twl = tiny(TrafficPattern::Burst);
        let a = run_cache_trace_cached(twl, CachePolicy::StaticLimit);
        let b = run_cache_trace_cached(twl, CachePolicy::StaticLimit);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        let fresh = run_cache_trace(twl, CachePolicy::StaticLimit);
        assert_eq!(
            serde_json::to_string(&*a).unwrap(),
            serde_json::to_string(&fresh).unwrap(),
            "cached and fresh runs are byte-identical"
        );
    }
}
