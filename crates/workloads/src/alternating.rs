//! Alternating-load JVM servers (paper Fig. 2).
//!
//! Figure 2 runs a Cassandra server and an Elasticsearch server — both
//! *unmodified* applications on the (M3-modified or stock) JVM — with
//! alternating load peaks. A stock JVM climbs to its peak heap and never
//! returns it, so 30 GB must be provisioned; under M3 the modified JVM
//! returns collected regions and 15 GB suffices.
//!
//! The model: a long-running server whose *live* data oscillates between a
//! baseline and a peak on a fixed period, continuously churning transient
//! allocation. Under M3 it handles signals at the JVM layer only (young GC
//! on low, mixed on high) — the application itself is unmodified.

use m3_core::{
    M3Participant, PacketKind, PacketOutcome, ReclaimScheduler, SchedulerConfig, SignalOutcome,
    ThresholdSignal,
};
use m3_os::{Kernel, Pid};
use m3_runtime::{Jvm, JvmConfig};
use m3_sim::clock::{SimDuration, SimTime};
use m3_sim::units::MIB;
use serde::{Deserialize, Serialize};

/// Load profile of an alternating server.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AlternatingProfile {
    /// Live bytes during quiet phases.
    pub baseline: u64,
    /// Live bytes during load peaks.
    pub peak: u64,
    /// Length of one quiet-or-peak phase.
    pub phase: SimDuration,
    /// Phase offset (Elasticsearch peaks while Cassandra is quiet).
    pub offset: SimDuration,
    /// Transient churn per second of serving.
    pub churn_per_sec: u64,
    /// Total server lifetime.
    pub lifetime: SimDuration,
}

/// An unmodified JVM server with alternating load.
#[derive(Debug)]
pub struct AlternatingApp {
    profile: AlternatingProfile,
    jvm: Jvm,
    started: Option<SimTime>,
    debt: SimDuration,
    finished: bool,
    /// Work-packet scheduler tunables for signal handling.
    sched: SchedulerConfig,
}

impl AlternatingApp {
    /// Creates the server.
    pub fn new(pid: Pid, jvm_cfg: JvmConfig, profile: AlternatingProfile) -> Self {
        AlternatingApp {
            profile,
            jvm: Jvm::new(pid, jvm_cfg),
            started: None,
            debt: SimDuration::ZERO,
            finished: false,
            sched: SchedulerConfig::default(),
        }
    }

    /// Overrides the work-packet scheduler configuration (worker count,
    /// bucket-order ablation).
    pub fn with_scheduler(mut self, sched: SchedulerConfig) -> Self {
        self.sched = sched;
        self
    }

    /// The underlying JVM.
    pub fn jvm(&self) -> &Jvm {
        &self.jvm
    }

    /// True once the lifetime has elapsed.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Adds signal-handling time to the debt.
    pub fn add_debt(&mut self, d: SimDuration) {
        self.debt += d;
    }

    /// Target live bytes at time `now`.
    fn target_live(&self, now: SimTime) -> u64 {
        let started = self.started.unwrap_or(now);
        let since = now.saturating_since(started) + self.profile.offset;
        let phase_idx = since.as_millis() / self.profile.phase.as_millis().max(1);
        if phase_idx % 2 == 1 {
            self.profile.peak
        } else {
            self.profile.baseline
        }
    }

    /// Runs the server for one tick. The server is latency-oriented, not
    /// throughput-oriented: it always "finishes" its per-tick work, with GC
    /// pauses absorbed as debt (request latency, invisible to this study).
    pub fn tick(&mut self, os: &mut Kernel, now: SimTime, budget: SimDuration) -> bool {
        if self.finished {
            return true;
        }
        let started = *self.started.get_or_insert(now);
        if now.saturating_since(started) >= self.profile.lifetime {
            self.finished = true;
            self.jvm.shutdown(os);
            return true;
        }
        // Pay debt (slows the ramp, not correctness).
        let pay = self.debt.min(budget);
        self.debt = self.debt - pay;

        // Move live data toward the target (ramp at ~256 MiB per second).
        let target = self.target_live(now);
        let live = self.jvm.pinned();
        let max_step = (256 * MIB) as f64 * budget.as_secs_f64();
        if live < target {
            let grow = (target - live).min(max_step as u64);
            if let Ok(c) = self.jvm.alloc_pinned(os, grow) {
                self.debt += c.pause;
            }
        } else if live > target {
            let shrink = (live - target).min(max_step as u64);
            self.jvm.free_pinned(shrink);
        }

        // Background churn (request serving).
        let churn = (self.profile.churn_per_sec as f64 * budget.as_secs_f64()) as u64;
        if churn > 0 {
            if let Ok(c) = self.jvm.alloc_transient(os, churn) {
                self.debt += c.pause;
            }
        }
        false
    }
}

impl M3Participant for AlternatingApp {
    fn pid(&self) -> Pid {
        self.jvm.pid()
    }

    /// The application is unmodified: only the JVM layer participates
    /// (young collection on low, mixed on high — Table 1's JVM row).
    fn handle_signal(
        &mut self,
        sig: ThresholdSignal,
        os: &mut Kernel,
        _now: SimTime,
    ) -> SignalOutcome {
        if self.finished {
            return SignalOutcome::default();
        }
        let mut sched = ReclaimScheduler::new(self.jvm.pid(), self.sched);
        let young = sched.add_costed(
            PacketKind::GcYoung,
            &[],
            |app: &AlternatingApp| app.jvm.young_collect_estimate(),
            |app: &mut AlternatingApp, os: &mut Kernel| {
                let gc = app.jvm.young_collect(os);
                PacketOutcome::freed(gc.reclaimed, gc.pause)
            },
        );
        let mut last = young;
        if sig == ThresholdSignal::High {
            last = sched.add_costed(
                PacketKind::GcOld,
                &[young],
                |app: &AlternatingApp| app.jvm.old_collect_estimate(),
                |app: &mut AlternatingApp, os: &mut Kernel| {
                    let gc = app.jvm.old_collect(os);
                    PacketOutcome::freed(gc.reclaimed, gc.pause)
                },
            );
        }
        sched.add_costed(
            PacketKind::Madvise,
            &[last],
            |app: &AlternatingApp| app.jvm.releasable(),
            |app: &mut AlternatingApp, os: &mut Kernel| {
                PacketOutcome::released(app.jvm.release_to_os(os))
            },
        );
        sched.drain(self, os).outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_os::KernelConfig;
    use m3_sim::units::GIB;

    fn profile() -> AlternatingProfile {
        AlternatingProfile {
            baseline: GIB,
            peak: 8 * GIB,
            phase: SimDuration::from_secs(100),
            offset: SimDuration::ZERO,
            churn_per_sec: 32 * MIB,
            lifetime: SimDuration::from_secs(500),
        }
    }

    fn run(
        cfg: JvmConfig,
    ) -> (
        Kernel,
        AlternatingApp,
        u64, /* peak rss */
        u64, /* final rss */
    ) {
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("server");
        let mut app = AlternatingApp::new(pid, cfg, profile());
        let tick = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        let mut peak = 0;
        let mut last = 0;
        while !app.tick(&mut os, now, tick) {
            now += tick;
            last = os.rss(pid);
            peak = peak.max(last);
        }
        (os, app, peak, last)
    }

    #[test]
    fn stock_jvm_holds_peak() {
        let (_, _, peak, _) = run(JvmConfig::stock(16 * GIB));
        assert!(peak >= 8 * GIB, "peak rss {peak} must reach the load peak");
        // Sample rss during a later quiet phase by re-running with probes.
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("server");
        let mut app = AlternatingApp::new(pid, JvmConfig::stock(16 * GIB), profile());
        let tick = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        // Run through one peak (t in [100,200)) into the next quiet phase.
        while now < SimTime::from_secs(290) {
            app.tick(&mut os, now, tick);
            now += tick;
        }
        assert!(
            os.rss(pid) >= 8 * GIB,
            "stock JVM must hold the peak through quiet phases, rss = {}",
            os.rss(pid)
        );
    }

    #[test]
    fn m3_jvm_returns_after_peak() {
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("server");
        let mut app = AlternatingApp::new(pid, JvmConfig::m3(62 * GIB), profile());
        let tick = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        while now < SimTime::from_secs(290) {
            app.tick(&mut os, now, tick);
            now += tick;
            // The quiet phase frees pinned data; GC + madvise shrink rss.
            if now.as_secs() == 250 {
                app.handle_signal(ThresholdSignal::High, &mut os, now);
            }
        }
        assert!(
            os.rss(pid) < 4 * GIB,
            "M3 JVM must return the peak, rss = {}",
            os.rss(pid)
        );
    }

    #[test]
    fn lifetime_ends_and_releases() {
        let (os, app, _, _) = run(JvmConfig::stock(16 * GIB));
        assert!(app.finished());
        assert_eq!(os.rss(app.pid()), 0);
    }

    #[test]
    fn offset_staggers_peaks() {
        let p = profile();
        let shifted = AlternatingProfile {
            offset: p.phase,
            ..p
        };
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid_a = os.spawn("a");
        let pid_b = os.spawn("b");
        let mut app_a = AlternatingApp::new(pid_a, JvmConfig::stock(16 * GIB), p);
        let mut app_b = AlternatingApp::new(pid_b, JvmConfig::stock(16 * GIB), shifted);
        app_a.started = Some(SimTime::ZERO);
        app_b.started = Some(SimTime::ZERO);
        let t = SimTime::from_secs(150); // a peaks, b is quiet
        assert_eq!(app_a.target_live(t), p.peak);
        assert_eq!(app_b.target_live(t), p.baseline);
    }
}
