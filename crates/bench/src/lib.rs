//! Experiment harness shared by the per-figure bench targets.
//!
//! Every table and figure in the paper's evaluation has a bench target in
//! `benches/` (with `harness = false`), so `cargo bench --workspace`
//! regenerates the full evaluation. Each harness prints the same rows or
//! series the paper reports and writes a JSON dump under `results/` for
//! re-plotting. This library holds the small shared pieces: table
//! rendering, profile summarisation, and the results-directory writer.

use m3_sim::clock::SimDuration;
use m3_sim::metrics::Profile;
use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Renders an aligned text table.
///
/// # Examples
///
/// ```
/// let t = m3_bench::render_table(
///     &["workload", "speedup"],
///     &[vec!["MMW 180".into(), "1.22x".into()]],
/// );
/// assert!(t.contains("MMW 180"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// Formats an optional speedup the way Fig. 5 plots it (`INF` when the
/// baseline could not run the workload).
pub fn fmt_speedup(s: Option<f64>) -> String {
    match s {
        Some(v) => format!("{v:.2}x"),
        None => "INF".to_string(),
    }
}

/// Formats an optional runtime in seconds (`FAIL` for apps that did not
/// run).
pub fn fmt_runtime(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:.0}"),
        None => "FAIL".to_string(),
    }
}

/// Formats a duration as whole seconds.
pub fn fmt_secs(d: SimDuration) -> String {
    format!("{:.0}", d.as_secs_f64())
}

/// The results directory (`results/` at the workspace root), created on
/// demand. A relative `M3_RESULTS_DIR` is resolved against the workspace
/// root, not the bench binary's cwd (cargo runs benches from the package
/// directory, which would scatter CI results under `crates/bench/`).
pub fn results_dir() -> PathBuf {
    let root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let p = match std::env::var("M3_RESULTS_DIR") {
        Ok(dir) if PathBuf::from(&dir).is_absolute() => PathBuf::from(dir),
        Ok(dir) => root.join(dir),
        Err(_) => root.join("results"),
    };
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Writes a serialisable value as pretty JSON under `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialise results");
    std::fs::write(&path, json).expect("write results file");
    println!("[results written to {}]", path.display());
}

/// Times one figure sweep and writes `results/BENCH_<fig>.json` containing
/// the figure's series plus the wall clock of producing them and the worker
/// count used — so harness speedups are tracked alongside the data itself.
pub struct BenchTimer {
    fig: String,
    started: std::time::Instant,
}

impl BenchTimer {
    /// Starts timing the sweep for figure `fig`.
    pub fn start(fig: &str) -> Self {
        println!(
            "[{fig}] sweep starting on {} worker(s)",
            m3_workloads::worker_threads()
        );
        BenchTimer {
            fig: fig.to_string(),
            started: std::time::Instant::now(),
        }
    }

    /// Seconds elapsed since [`BenchTimer::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Writes `results/BENCH_<fig>.json` with the sweep wall clock and the
    /// figure payload. Consumes the timer: one report per sweep.
    pub fn finish<T: Serialize>(self, results: &T) {
        let wall = self.elapsed_secs();
        let report = serde::Content::Map(vec![
            ("fig".to_string(), serde::Content::Str(self.fig.clone())),
            ("wall_clock_secs".to_string(), serde::Content::F64(wall)),
            (
                "workers".to_string(),
                serde::Content::U64(m3_workloads::worker_threads() as u64),
            ),
            ("results".to_string(), results.serialize()),
        ]);
        println!("[{}] sweep finished in {wall:.2}s", self.fig);
        write_json(&format!("BENCH_{}", self.fig), &report);
    }
}

/// Summarises a profile's series into `(name, mean, max)` rows for quick
/// textual inspection of the figure panels.
pub fn profile_summary(profile: &Profile) -> Vec<Vec<String>> {
    profile
        .series
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{:.1}", s.mean().unwrap_or(0.0)),
                format!("{:.1}", s.max().unwrap_or(0.0)),
            ]
        })
        .collect()
}

/// Prints a profile as a compact ASCII strip chart (one row per series,
/// sampled down to `cols` columns), so the figure shape is visible in the
/// bench output without plotting.
pub fn ascii_profile(profile: &Profile, cols: usize, max_gib: f64) -> String {
    const GLYPHS: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    for s in &profile.series {
        if s.samples.is_empty() {
            continue;
        }
        let mut row = vec![b' '; cols];
        let t_end = s
            .samples
            .last()
            .expect("non-empty")
            .t
            .as_secs_f64()
            .max(1.0);
        for p in &s.samples {
            let col = ((p.t.as_secs_f64() / t_end) * (cols - 1) as f64) as usize;
            let level = ((p.v / max_gib).clamp(0.0, 1.0) * (GLYPHS.len() - 1) as f64) as usize;
            row[col] = GLYPHS[level].max(row[col]);
        }
        let _ = writeln!(
            out,
            "{:>16} |{}|",
            s.name,
            String::from_utf8(row).expect("ascii")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_sim::clock::SimTime;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bbbb"));
        assert!(lines[2].ends_with("2  "));
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(Some(1.6049)), "1.60x");
        assert_eq!(fmt_speedup(None), "INF");
        assert_eq!(fmt_runtime(Some(123.4)), "123");
        assert_eq!(fmt_runtime(None), "FAIL");
        assert_eq!(fmt_secs(SimDuration::from_millis(2500)), "2");
    }

    #[test]
    fn profile_summary_rows() {
        let mut p = Profile::new();
        p.series_mut("x").push(SimTime::ZERO, 1.0);
        p.series_mut("x").push(SimTime::from_secs(1), 3.0);
        let rows = profile_summary(&p);
        assert_eq!(
            rows,
            vec![vec!["x".to_string(), "2.0".into(), "3.0".into()]]
        );
    }

    #[test]
    fn ascii_profile_is_bounded() {
        let mut p = Profile::new();
        for i in 0..100 {
            p.series_mut("total").push(SimTime::from_secs(i), i as f64);
        }
        let art = ascii_profile(&p, 40, 100.0);
        assert!(art.contains("total"));
        let line = art.lines().next().unwrap();
        assert!(line.len() < 70);
    }
}
