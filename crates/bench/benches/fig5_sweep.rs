//! Wall-clock benchmark of the parallel experiment harness itself.
//!
//! The payload is the Fig. 5 sweep — the twelve evaluation workloads, each
//! run under M3 and under Default (24 independent runs). The sweep is
//! executed three ways:
//!
//! 1. **serial** — a plain loop over `run_scenario`, the pre-harness
//!    behaviour and the correctness reference;
//! 2. **parallel** — the same fresh runs fanned out over the worker pool
//!    with [`m3_workloads::parallel_map`];
//! 3. **memoized** — [`m3_workloads::run_scenarios_parallel_with`] twice:
//!    the first pass fills the content-addressed run cache, the second
//!    replays it without simulating anything.
//!
//! All three produce byte-identical outcomes (asserted here and pinned
//! down in `tests/determinism.rs`); only the wall clock differs. The
//! speedups depend on the host: the parallel/serial ratio tracks the
//! core count (`workers` in the report), the replay pass is near-free
//! everywhere.

use std::time::Instant;

use m3_bench::{render_table, BenchTimer};
use m3_sim::clock::SimDuration;
use m3_workloads::machine::MachineConfig;
use m3_workloads::runner::{run_scenario, ScenarioOutcome};
use m3_workloads::scenario::{figure5_scenarios, Scenario};
use m3_workloads::settings::Setting;
use m3_workloads::{cache_stats, parallel_map, run_scenarios_parallel_with, worker_threads};
use serde::Serialize;

#[derive(Serialize)]
struct SweepReport {
    jobs: usize,
    workers: usize,
    serial_secs: f64,
    parallel_secs: f64,
    parallel_speedup: f64,
    memo_first_pass_secs: f64,
    memo_replay_secs: f64,
    memo_replay_speedup_vs_serial: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    per_job: Vec<JobRow>,
}

#[derive(Serialize)]
struct JobRow {
    workload: String,
    setting: String,
    mean_runtime_s: Option<f64>,
}

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(40_000);
    cfg
}

fn outcome_bytes(o: &ScenarioOutcome) -> String {
    serde_json::to_string(o).expect("serialize outcome")
}

fn main() {
    let bench = BenchTimer::start("fig5_sweep");
    let cfg = machine();
    let jobs: Vec<(Scenario, Setting, MachineConfig)> = figure5_scenarios()
        .into_iter()
        .flat_map(|s| {
            let n = s.len();
            [
                (s.clone(), Setting::m3(n), cfg),
                (s, Setting::default_for(n), cfg),
            ]
        })
        .collect();
    let workers = worker_threads();
    println!(
        "Fig. 5 sweep: {} runs (12 workloads x M3/Default), {} worker(s)\n",
        jobs.len(),
        workers
    );

    // 1. Serial reference: the pre-harness behaviour.
    let t = Instant::now();
    let serial: Vec<ScenarioOutcome> = jobs
        .iter()
        .map(|(s, set, cfg)| run_scenario(s, set, *cfg))
        .collect();
    let serial_secs = t.elapsed().as_secs_f64();

    // 2. Parallel, fresh computation per job (no memoization involved).
    let t = Instant::now();
    let parallel: Vec<ScenarioOutcome> = parallel_map(jobs.clone(), workers, |(s, set, cfg)| {
        run_scenario(&s, &set, cfg)
    });
    let parallel_secs = t.elapsed().as_secs_f64();

    // 3. Memoized harness: first pass computes and fills the cache, the
    //    replay pass answers everything from it.
    let cache_before = cache_stats();
    let t = Instant::now();
    let warm = run_scenarios_parallel_with(jobs.clone(), workers);
    let memo_first_pass_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let replay = run_scenarios_parallel_with(jobs.clone(), workers);
    let memo_replay_secs = t.elapsed().as_secs_f64();
    let cache_delta = cache_stats().since(&cache_before);

    // Every execution mode must agree byte for byte.
    for (i, a) in serial.iter().enumerate() {
        let reference = outcome_bytes(a);
        assert_eq!(reference, outcome_bytes(&parallel[i]), "job {i} (parallel)");
        assert_eq!(reference, outcome_bytes(&warm[i]), "job {i} (memo warm)");
        assert_eq!(
            reference,
            outcome_bytes(&replay[i]),
            "job {i} (memo replay)"
        );
    }
    println!(
        "all {} runs byte-identical across execution modes\n",
        jobs.len()
    );

    let per_job: Vec<JobRow> = jobs
        .iter()
        .zip(&serial)
        .map(|((s, set, _), out)| JobRow {
            workload: s.name.clone(),
            setting: set.kind.label().to_string(),
            mean_runtime_s: out.mean_runtime_secs(),
        })
        .collect();
    let report = SweepReport {
        jobs: jobs.len(),
        workers,
        serial_secs,
        parallel_secs,
        parallel_speedup: serial_secs / parallel_secs.max(1e-9),
        memo_first_pass_secs,
        memo_replay_secs,
        memo_replay_speedup_vs_serial: serial_secs / memo_replay_secs.max(1e-9),
        cache_hits: cache_delta.hits,
        cache_misses: cache_delta.misses,
        cache_hit_rate: cache_delta.hit_rate(),
        per_job,
    };
    println!(
        "{}",
        render_table(
            &["mode", "wall clock (s)", "speedup vs serial"],
            &[
                vec!["serial".into(), format!("{serial_secs:.2}"), "1.00x".into()],
                vec![
                    format!("parallel x{workers}"),
                    format!("{parallel_secs:.2}"),
                    format!("{:.2}x", report.parallel_speedup),
                ],
                vec![
                    "memo replay".into(),
                    format!("{memo_replay_secs:.3}"),
                    format!("{:.0}x", report.memo_replay_speedup_vs_serial),
                ],
            ],
        )
    );
    println!(
        "memo cache: {} hits / {} misses ({:.0}% hit rate over both passes)",
        report.cache_hits,
        report.cache_misses,
        report.cache_hit_rate * 100.0
    );
    bench.finish(&report);
}
