//! Figure 7: memory profile of the CMW 180 workload, M3 vs OWS.
//!
//! Go-Cache, then k-means, then n-weight, 180 s apart. The paper's claims
//! checked here:
//!
//! - M3 partitions memory according to demand (k-means takes less than the
//!   cache; after Go-Cache finishes, the analytics jobs consume its share);
//! - the three per-app peaks sum well above the 64-GB node (paper: 44.48 +
//!   42.83 + 58.15 = 145.46 GB), yet the workload runs without issue
//!   because the peaks do not coincide;
//! - all three jobs finish faster under M3 than under OWS.

use m3_bench::{ascii_profile, render_table, BenchTimer};
use m3_sim::clock::SimDuration;
use m3_sim::units::GIB;
use m3_workloads::machine::MachineConfig;
use m3_workloads::runner::{run_scenario, speedup_report};
use m3_workloads::scenario::Scenario;
use m3_workloads::search::{search_ows, SearchSpace};
use m3_workloads::settings::Setting;
use serde::Serialize;

#[derive(Serialize)]
struct Fig7Summary {
    system: String,
    app_runtimes_s: Vec<Option<f64>>,
    peak_rss_gib: Vec<f64>,
    peaks_sum_gib: f64,
    mean_rss_gib: f64,
}

fn main() {
    let bench = BenchTimer::start("fig7_profile_cmw");
    let scenario = Scenario::uniform("CMW", 180);
    let mut cfg = MachineConfig::stock_64gb();
    cfg.max_time = SimDuration::from_secs(40_000);

    eprintln!("[fig7] searching OWS for {} ...", scenario.name);
    let ows_setting = search_ows(&scenario, &SearchSpace::paper(), cfg);
    let m3 = run_scenario(&scenario, &Setting::m3(scenario.len()), cfg);
    let ows = run_scenario(&scenario, &ows_setting, cfg);

    println!("Figure 7 — CMW 180 memory profile (Go-Cache + k-means + n-weight)\n");
    println!("M3:");
    println!("{}", ascii_profile(&m3.run.profile, 72, 64.0));
    println!("\nOracle with Spark configuration:");
    println!("{}", ascii_profile(&ows.run.profile, 72, 64.0));

    let peaks: Vec<f64> = m3
        .run
        .apps
        .iter()
        .map(|a| a.peak_rss as f64 / GIB as f64)
        .collect();
    let sum: f64 = peaks.iter().sum();
    let rows: Vec<Vec<String>> = m3
        .run
        .apps
        .iter()
        .zip(&ows.run.apps)
        .map(|(m, o)| {
            vec![
                m.name.clone(),
                format!(
                    "{:.0}",
                    m.runtime().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN)
                ),
                format!(
                    "{:.0}",
                    o.runtime().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN)
                ),
                format!("{:.1}", m.peak_rss as f64 / GIB as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["app", "M3 runtime (s)", "OWS runtime (s)", "M3 peak (GiB)"],
            &rows
        )
    );
    println!(
        "sum of M3 peaks: {sum:.1} GiB on a 64-GiB node   (paper: 145.46 GB — peaks must not coincide)"
    );
    assert!(
        sum > 64.0,
        "the combined peaks must exceed the node for the claim to be meaningful"
    );
    let rep = speedup_report(&m3, &ows);
    println!(
        "per-app speedups M3 vs OWS: {:?}  (paper: all three finish faster under M3)",
        rep.per_app
            .iter()
            .map(|s| s.map(|v| format!("{v:.2}x")))
            .collect::<Vec<_>>()
    );
    println!(
        "mean RSS: {:.0} GiB (M3) vs {:.0} GiB (OWS)   (paper §7.3: 48 GB vs 54 GB)",
        m3.run.mean_rss / GIB as f64,
        ows.run.mean_rss / GIB as f64
    );

    let summaries = vec![
        Fig7Summary {
            system: "M3".into(),
            app_runtimes_s: m3.runtimes_secs(),
            peak_rss_gib: peaks,
            peaks_sum_gib: sum,
            mean_rss_gib: m3.run.mean_rss / GIB as f64,
        },
        Fig7Summary {
            system: "OWS".into(),
            app_runtimes_s: ows.runtimes_secs(),
            peak_rss_gib: ows
                .run
                .apps
                .iter()
                .map(|a| a.peak_rss as f64 / GIB as f64)
                .collect(),
            peaks_sum_gib: ows
                .run
                .apps
                .iter()
                .map(|a| a.peak_rss as f64 / GIB as f64)
                .sum(),
            mean_rss_gib: ows.run.mean_rss / GIB as f64,
        },
    ];
    bench.finish(&summaries);
}
