//! Figure 10: dynamic vs static signal thresholds.
//!
//! Three k-means jobs with no delay run under M3 twice: once with adaptive
//! thresholds (initialised to low 40 GB / high 45 GB and adjusted
//! dynamically) and once with the same values pinned. The paper: "M3
//! detects that the applications are able to return memory, and raises both
//! thresholds ... the workload with dynamic thresholds terminates 1.93×
//! earlier."

use m3_bench::{ascii_profile, render_table, BenchTimer};
use m3_core::MonitorConfig;
use m3_sim::clock::SimDuration;
use m3_sim::units::GIB;
use m3_workloads::machine::MachineConfig;
use m3_workloads::runner::run_scenario;
use m3_workloads::scenario::Scenario;
use m3_workloads::settings::Setting;
use serde::Serialize;

#[derive(Serialize)]
struct Fig10Row {
    thresholds: String,
    end_to_end_s: f64,
    app_runtimes_s: Vec<Option<f64>>,
    high_signals: u64,
    final_low_gib: f64,
    final_high_gib: f64,
}

fn run(adaptive: bool) -> (m3_workloads::runner::ScenarioOutcome, Fig10Row) {
    let scenario = Scenario::uniform("MMM", 0);
    let mut monitor = MonitorConfig::paper_64gb();
    monitor.initial_low = 40 * GIB;
    monitor.initial_high = 45 * GIB;
    monitor.adaptive = adaptive;
    let mut cfg = MachineConfig::stock_64gb();
    cfg.monitor = Some(monitor);
    cfg.max_time = SimDuration::from_secs(40_000);
    let out = run_scenario(&scenario, &Setting::m3(3), cfg);
    let low = out
        .run
        .profile
        .series("low-threshold")
        .and_then(|s| s.last())
        .unwrap_or(0.0);
    let high = out
        .run
        .profile
        .series("high-threshold")
        .and_then(|s| s.last())
        .unwrap_or(0.0);
    let row = Fig10Row {
        thresholds: if adaptive { "dynamic" } else { "static" }.into(),
        end_to_end_s: out.run.end.as_secs_f64(),
        app_runtimes_s: out.runtimes_secs(),
        high_signals: out.run.monitor_stats.map_or(0, |s| s.high_signals),
        final_low_gib: low,
        final_high_gib: high,
    };
    (out, row)
}

fn main() {
    let bench = BenchTimer::start("fig10_thresholds");
    println!("Figure 10 — dynamic vs static thresholds (three k-means, no delay)\n");
    let (dynamic_out, dynamic) = run(true);
    let (static_out, static_row) = run(false);

    println!("Dynamic thresholds:");
    println!("{}", ascii_profile(&dynamic_out.run.profile, 72, 64.0));
    println!("Static thresholds (low 40 GiB / high 45 GiB pinned):");
    println!("{}", ascii_profile(&static_out.run.profile, 72, 64.0));

    let rows = vec![
        vec![
            dynamic.thresholds.clone(),
            format!("{:.0}", dynamic.end_to_end_s),
            format!("{}", dynamic.high_signals),
            format!("{:.1}", dynamic.final_low_gib),
            format!("{:.1}", dynamic.final_high_gib),
        ],
        vec![
            static_row.thresholds.clone(),
            format!("{:.0}", static_row.end_to_end_s),
            format!("{}", static_row.high_signals),
            format!("{:.1}", static_row.final_low_gib),
            format!("{:.1}", static_row.final_high_gib),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "thresholds",
                "end-to-end (s)",
                "high signals",
                "final low (GiB)",
                "final high (GiB)"
            ],
            &rows
        )
    );
    println!(
        "dynamic finishes {:.2}x earlier   (paper: 1.93x)",
        static_row.end_to_end_s / dynamic.end_to_end_s
    );
    assert!(
        dynamic.final_high_gib > 45.0,
        "adaptive run must have raised the high threshold"
    );

    let fig_rows = vec![dynamic, static_row];
    bench.finish(&fig_rows);
}
