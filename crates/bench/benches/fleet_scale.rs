//! Fleet-scale experiment: the pressure-aware scheduler at 8 → 10,000
//! nodes.
//!
//! Runs the wave-shaped fleet-scale workload (ten waves of `nodes` jobs,
//! so `10 * nodes` jobs per point — 100,000 at the top) through the
//! pressure-aware scheduler at growing fleet sizes, on a quarter-small
//! heterogeneous fleet (every fourth node is 32 GiB). Reports per-point
//! wall clock, scheduler activity, and the node-run cache's hit rate —
//! the content-addressed sharing that makes a 10k-node fleet simulate
//! only its few distinct node schedules. A passthrough (replicated) point
//! and a memoized repeat of the largest point ride along as contrast and
//! regression checks.
//!
//! Knobs: `M3_FLEET_SCALE_MAX_NODES` caps the curve (CI smoke runs 512);
//! `M3_FLEET_SCALE_BUDGET_S` asserts a per-point wall-clock budget;
//! `M3_JOBS` sets the worker count recorded in the report.

use m3_bench::{fmt_runtime, render_table, BenchTimer};
use m3_sim::clock::SimDuration;
use m3_sim::units::GIB;
use m3_workloads::cluster::{ClusterMean, JobFailure};
use m3_workloads::fleet::{fleet_cache_stats, run_fleet_cached, FleetConfig, NodeSpec};
use m3_workloads::machine::MachineConfig;
use m3_workloads::parallel::cache_stats;
use m3_workloads::scenario::{fleet_canonical, fleet_scale_scenario, Scenario};
use m3_workloads::settings::Setting;
use m3_workloads::worker_threads;
use serde::Serialize;

#[derive(Serialize)]
struct FleetRow {
    nodes: usize,
    jobs: usize,
    scheduler: bool,
    wall_clock_s: f64,
    workers: usize,
    mean_runtime_s: Option<f64>,
    completed_apps: usize,
    failed_apps: usize,
    deferrals: u64,
    migrations: u64,
    gave_up: usize,
    violations: usize,
    /// Node-run cache activity of this point: misses = distinct node
    /// simulations actually run, hit rate = the content-addressed sharing
    /// across the fleet's nodes and probe times.
    node_cache_hits: u64,
    node_cache_misses: u64,
    node_cache_hit_rate: f64,
}

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.capture_trace = false;
    cfg.max_time = SimDuration::from_secs(40_000);
    cfg
}

/// A fleet of `n` nodes where every fourth one is a small 32-GiB worker —
/// heterogeneity the candidate index and admission control must respect.
fn quarter_small_fleet(n: usize) -> FleetConfig {
    let mut fleet = FleetConfig::homogeneous(n, 64 * GIB);
    for (i, node) in fleet.nodes.iter_mut().enumerate() {
        if i % 4 == 3 {
            *node = NodeSpec {
                phys_total: 32 * GIB,
            };
        }
    }
    fleet
}

fn run_row(scenario: &Scenario, fleet: &FleetConfig) -> FleetRow {
    let setting = Setting::m3(scenario.len());
    let cache_before = cache_stats();
    let started = std::time::Instant::now();
    let res = run_fleet_cached(scenario, &setting, machine(), fleet);
    let wall_clock_s = started.elapsed().as_secs_f64();
    let cache = cache_stats().since(&cache_before);
    let ClusterMean {
        mean_secs,
        completed_apps,
        failed_apps,
        ..
    } = res.cluster.mean_runtime_secs();
    FleetRow {
        nodes: fleet.nodes.len(),
        jobs: scenario.len(),
        scheduler: fleet.scheduler,
        wall_clock_s,
        workers: worker_threads(),
        mean_runtime_s: mean_secs,
        completed_apps,
        failed_apps,
        deferrals: res.jobs.iter().map(|j| j.deferrals as u64).sum(),
        migrations: res.jobs.iter().map(|j| j.migrations as u64).sum(),
        gave_up: res
            .jobs
            .iter()
            .filter(|j| j.failure == Some(JobFailure::GaveUp))
            .count(),
        violations: res.violations.len(),
        node_cache_hits: cache.hits,
        node_cache_misses: cache.misses,
        node_cache_hit_rate: cache.hit_rate(),
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn main() {
    let bench = BenchTimer::start("fleet_scale");
    let max_nodes = env_usize("M3_FLEET_SCALE_MAX_NODES").unwrap_or(10_000);
    let budget_s = env_f64("M3_FLEET_SCALE_BUDGET_S");
    println!("Fleet scheduler scaling — wave workload, 10 jobs/node\n");

    let mut rows = Vec::new();
    for nodes in [8usize, 64, 512, 4096, 10_000] {
        if nodes > max_nodes {
            println!("[skipping {nodes} nodes: M3_FLEET_SCALE_MAX_NODES={max_nodes}]");
            continue;
        }
        let scenario = fleet_scale_scenario(nodes);
        rows.push(run_row(&scenario, &quarter_small_fleet(nodes)));
    }
    // Contrast: the replicated-worker setup on the canonical mix (every
    // node runs the whole schedule; no placement decisions at all).
    rows.push(run_row(&fleet_canonical(), &FleetConfig::passthrough(8)));
    // Re-running the largest scheduled point must be a pure cache hit.
    let largest = rows
        .iter()
        .filter(|r| r.scheduler)
        .map(|r| r.nodes)
        .max()
        .expect("at least one scheduled point");
    let before = fleet_cache_stats();
    rows.push(run_row(
        &fleet_scale_scenario(largest),
        &quarter_small_fleet(largest),
    ));
    let delta = fleet_cache_stats().since(&before);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                r.jobs.to_string(),
                if r.scheduler { "fleet" } else { "replicated" }.into(),
                format!("{:.2}", r.wall_clock_s),
                fmt_runtime(r.mean_runtime_s),
                format!("{}/{}", r.completed_apps, r.completed_apps + r.failed_apps),
                r.deferrals.to_string(),
                r.migrations.to_string(),
                r.gave_up.to_string(),
                r.violations.to_string(),
                format!("{:.0}%", r.node_cache_hit_rate * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "nodes",
                "jobs",
                "mode",
                "wall (s)",
                "mean runtime (s)",
                "completed",
                "deferrals",
                "migrations",
                "gave up",
                "violations",
                "sim cache",
            ],
            &table
        )
    );
    println!(
        "fleet memoization on repeat: {} hit(s), {} miss(es)",
        delta.hits, delta.misses
    );
    assert_eq!(delta.misses, 0, "repeated fleet run must be memoized");
    assert!(
        rows.iter().all(|r| r.violations == 0),
        "conformant fleet runs must pass the cluster oracle at every scale"
    );
    if let Some(budget) = budget_s {
        for r in &rows {
            assert!(
                r.wall_clock_s <= budget,
                "{}-node point took {:.2}s, over the {budget}s budget",
                r.nodes,
                r.wall_clock_s
            );
        }
    }
    bench.finish(&rows);
}
