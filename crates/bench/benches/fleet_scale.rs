//! Fleet-scale experiment: the pressure-aware scheduler vs replicated runs.
//!
//! Runs the canonical fleet workload (`MMWMCM 120`) through the
//! pressure-aware scheduler at growing fleet sizes and, for contrast,
//! through the scheduler-less passthrough mode (every node runs the whole
//! schedule — the paper's replicated-worker setup). Reports the
//! [`ClusterMean`] aggregation: mean runtime over the completed apps with
//! the failed-app count alongside, plus the scheduler's deferral and
//! migration activity and its memoization hit rate.

use m3_bench::{fmt_runtime, render_table, BenchTimer};
use m3_sim::clock::SimDuration;
use m3_sim::units::GIB;
use m3_workloads::cluster::ClusterMean;
use m3_workloads::fleet::{fleet_cache_stats, run_fleet_cached, FleetConfig};
use m3_workloads::machine::MachineConfig;
use m3_workloads::scenario::fleet_canonical;
use m3_workloads::settings::Setting;
use serde::Serialize;

#[derive(Serialize)]
struct FleetRow {
    nodes: usize,
    scheduler: bool,
    mean_runtime_s: Option<f64>,
    completed_apps: usize,
    failed_apps: usize,
    deferrals: u64,
    migrations: u64,
    gave_up: usize,
    violations: usize,
}

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(40_000);
    cfg
}

fn row(nodes: usize, scheduler: bool) -> FleetRow {
    let scenario = fleet_canonical();
    let setting = Setting::m3(scenario.len());
    let fleet = if scheduler {
        FleetConfig::homogeneous(nodes, 64 * GIB)
    } else {
        FleetConfig::passthrough(nodes)
    };
    let res = run_fleet_cached(&scenario, &setting, machine(), &fleet);
    let ClusterMean {
        mean_secs,
        completed_apps,
        failed_apps,
    } = res.cluster.mean_runtime_secs();
    FleetRow {
        nodes,
        scheduler,
        mean_runtime_s: mean_secs,
        completed_apps,
        failed_apps,
        deferrals: res.jobs.iter().map(|j| j.deferrals as u64).sum(),
        migrations: res.jobs.iter().map(|j| j.migrations as u64).sum(),
        gave_up: res.jobs.iter().filter(|j| j.gave_up).count(),
        violations: res.violations.len(),
    }
}

fn main() {
    let bench = BenchTimer::start("fleet_scale");
    let scenario = fleet_canonical();
    println!("Fleet scheduler scaling — {}\n", scenario.name);

    let mut rows = Vec::new();
    for nodes in [2, 4, 8] {
        rows.push(row(nodes, true));
    }
    rows.push(row(8, false));
    // Re-running the largest fleet must be a pure cache hit.
    let before = fleet_cache_stats();
    rows.push(row(8, true));
    let delta = fleet_cache_stats().since(&before);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                if r.scheduler { "fleet" } else { "replicated" }.into(),
                fmt_runtime(r.mean_runtime_s),
                format!("{}/{}", r.completed_apps, r.completed_apps + r.failed_apps),
                r.deferrals.to_string(),
                r.migrations.to_string(),
                r.gave_up.to_string(),
                r.violations.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "nodes",
                "mode",
                "mean runtime (s)",
                "completed",
                "deferrals",
                "migrations",
                "gave up",
                "violations",
            ],
            &table
        )
    );
    println!(
        "fleet memoization on repeat: {} hit(s), {} miss(es)",
        delta.hits, delta.misses
    );
    assert_eq!(delta.misses, 0, "repeated fleet run must be memoized");
    assert!(
        rows.iter().all(|r| r.violations == 0),
        "conformant fleet runs must pass the cluster oracle"
    );
    bench.finish(&rows);
}
