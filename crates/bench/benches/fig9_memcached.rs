//! Figure 9: a Spark k-means job plus a Memcached/memtier benchmark on a
//! single 8-GB node.
//!
//! The Memcached server starts four minutes after the Spark job. Under M3
//! the server (ported to jemalloc + slab-eviction policies) and the
//! executor share the node adaptively; the unmodified baseline uses a
//! best-effort static split (4-GB heap / 3-GB cache on `malloc`), as the
//! paper did ("we were unable to comprehensively cover many static settings
//! and used a best effort approach"). Paper result: average application
//! speedup 2.23×.

use m3_bench::{fmt_runtime, fmt_speedup, render_table, BenchTimer};
use m3_framework::SparkConfig;
use m3_runtime::{AllocatorKind, JvmConfig};
use m3_sim::clock::SimDuration;
use m3_sim::units::GIB;
use m3_workloads::apps::AppBlueprint;
use m3_workloads::hibench;
use m3_workloads::machine::{AppResult, Machine, MachineConfig};
use m3_workloads::settings::M3_HEAP_CEILING;
use serde::Serialize;

#[derive(Serialize)]
struct Fig9Row {
    app: String,
    m3_runtime_s: Option<f64>,
    static_runtime_s: Option<f64>,
    speedup: Option<f64>,
}

fn runtime_s(a: &AppResult) -> Option<f64> {
    if a.failed || a.killed {
        None
    } else {
        a.runtime().map(|d| d.as_secs_f64())
    }
}

fn run(m3: bool) -> Vec<AppResult> {
    let mut cfg = MachineConfig::scaled(8 * GIB, m3);
    cfg.max_time = SimDuration::from_secs(40_000);
    cfg.sample_period = None;
    let spark = if m3 {
        AppBlueprint::Spark {
            jvm: JvmConfig::m3(M3_HEAP_CEILING),
            spark: SparkConfig::m3(),
            job: hibench::kmeans_small(),
        }
    } else {
        AppBlueprint::Spark {
            jvm: JvmConfig::stock(4 * GIB),
            spark: SparkConfig::default(),
            job: hibench::kmeans_small(),
        }
    };
    let memcached = AppBlueprint::Memcached {
        allocator: if m3 {
            AllocatorKind::Jemalloc
        } else {
            AllocatorKind::Malloc
        },
        workload: hibench::memtier_workload(),
        max_bytes: 3 * GIB,
        m3_mode: m3,
    };
    Machine::new(cfg)
        .run(vec![
            ("k-means".into(), SimDuration::ZERO, spark),
            ("memcached".into(), SimDuration::from_secs(240), memcached),
        ])
        .apps
}

fn main() {
    let bench = BenchTimer::start("fig9_memcached");
    println!("Figure 9 — k-means + Memcached (memtier) on a single 8-GB node\n");
    let m3 = run(true);
    let stock = run(false);

    let mut speedups = Vec::new();
    let rows: Vec<Vec<String>> = m3
        .iter()
        .zip(&stock)
        .map(|(m, s)| {
            let sp = match (runtime_s(m), runtime_s(s)) {
                (Some(mr), Some(sr)) if mr > 0.0 => Some(sr / mr),
                _ => None,
            };
            speedups.push(sp);
            vec![
                m.name.clone(),
                fmt_runtime(runtime_s(m)),
                fmt_runtime(runtime_s(s)),
                fmt_speedup(sp),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["app", "M3 (s)", "unmodified (s)", "speedup"], &rows)
    );
    let finite: Vec<f64> = speedups.iter().flatten().copied().collect();
    let mean = if finite.len() == speedups.len() && !finite.is_empty() {
        Some(finite.iter().sum::<f64>() / finite.len() as f64)
    } else {
        None
    };
    println!(
        "average application speedup: {}   (paper: 2.23x)",
        fmt_speedup(mean)
    );

    let json: Vec<Fig9Row> = m3
        .iter()
        .zip(&stock)
        .zip(&speedups)
        .map(|((m, s), sp)| Fig9Row {
            app: m.name.clone(),
            m3_runtime_s: runtime_s(m),
            static_runtime_s: runtime_s(s),
            speedup: *sp,
        })
        .collect();
    bench.finish(&json);
}
