//! Figure 1: Spark's performance improvement with increased memory.
//!
//! Reproduces the paper's heap-size sweep: k-means over 8–40 GB and
//! PageRank over 12–76 GB of `-Xmx`, on a node whose physical memory is
//! large enough to never interfere (the paper: "system memory is allowed to
//! be large enough to fit the entire workload"). For each point the harness
//! reports job completion time split into runtime, Spark MM (capacity-miss
//! handling) and GC pause time — the three stacked components of Fig. 1.
//!
//! Expected shape: completion time improves over a wide heap range and
//! flattens once the default storage capacity covers the working set
//! (~40 GB for k-means, ~76 GB for PageRank); Spark MM dominates at small
//! heaps; GC time never reaches zero (footnote 2).

use m3_bench::{fmt_secs, render_table, BenchTimer};
use m3_framework::{JobSpec, SparkConfig};
use m3_runtime::JvmConfig;
use m3_sim::clock::SimDuration;
use m3_sim::units::GIB;
use m3_workloads::apps::AppBlueprint;
use m3_workloads::hibench;
use m3_workloads::machine::{Machine, MachineConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    heap_gib: u64,
    total_s: f64,
    spark_mm_s: f64,
    gc_pause_s: f64,
}

fn sweep(job: JobSpec, heaps_gib: &[u64]) -> Vec<Point> {
    let mut points = Vec::new();
    for &h in heaps_gib {
        let mut cfg = MachineConfig::stock_64gb();
        cfg.phys_total = 192 * GIB; // memory never the constraint here
        cfg.sample_period = None;
        cfg.max_time = SimDuration::from_secs(60_000);
        let machine = Machine::new(cfg);
        let bp = AppBlueprint::Spark {
            jvm: JvmConfig::stock(h * GIB),
            spark: SparkConfig::default(),
            job: job.clone(),
        };
        let res = machine.run(vec![(job.name.as_str().into(), SimDuration::ZERO, bp)]);
        let a = &res.apps[0];
        points.push(Point {
            heap_gib: h,
            total_s: a.runtime().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN),
            spark_mm_s: a.mm_time.as_secs_f64(),
            gc_pause_s: a.gc_pause.as_secs_f64(),
        });
    }
    points
}

fn print_sweep(name: &str, points: &[Point]) {
    println!("\nFigure 1 — {name}: job completion time vs max JVM heap size");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.heap_gib),
                format!("{:.0}", p.total_s),
                format!("{:.0}", p.spark_mm_s),
                format!("{:.0}", p.gc_pause_s),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["heap (GiB)", "JCT (s)", "Spark MM (s)", "GC pause (s)"],
            &rows
        )
    );
}

fn main() {
    let bench = BenchTimer::start("fig1_elasticity");
    let kmeans = sweep(hibench::kmeans(), &[8, 12, 16, 20, 24, 28, 32, 36, 40, 48]);
    print_sweep("k-means", &kmeans);
    let pagerank = sweep(
        hibench::pagerank(),
        &[12, 20, 28, 36, 44, 52, 60, 68, 76, 88],
    );
    print_sweep("PageRank", &pagerank);

    // Shape checks mirrored from the paper's claims.
    let k_first = kmeans.first().expect("points").total_s;
    let k_flat = kmeans
        .iter()
        .find(|p| p.heap_gib == 40)
        .expect("40G point")
        .total_s;
    let k_last = kmeans.last().expect("points").total_s;
    println!(
        "k-means: 8G→40G speedup {:.2}x; beyond 40G changes {:.1}%  (paper: improves to 40GB, then flat)",
        k_first / k_flat,
        (k_flat - k_last) / k_flat * 100.0
    );
    let p_first = pagerank.first().expect("points").total_s;
    let p_flat = pagerank
        .iter()
        .find(|p| p.heap_gib == 76)
        .expect("76G point");
    println!(
        "PageRank: 12G→76G speedup {:.2}x; GC at 76G = {}s  (paper: improves to 76GB, GC ≥ 328s at any heap)",
        p_first / p_flat.total_s,
        fmt_secs(SimDuration::from_millis((p_flat.gc_pause_s * 1000.0) as u64))
    );

    bench.finish(&(&kmeans, &pagerank));
}
