//! Mixed-criticality co-location: batch load vs critical-tier SLO debt.
//!
//! The flagship criticality experiment: a latency-critical memcached-style
//! cache tier arrives on a one-node fleet *after* an increasing number of
//! batch Spark k-means jobs. Under the classified scheduler the cache
//! preempts a batch reservation instead of queueing behind it and the
//! node's kill ordering shields it from reclamation; under the
//! criticality-unaware baseline (the same workload with its classes
//! stripped) the cache waits its turn and absorbs the pressure, so its SLO
//! debt grows with batch load. Every point — classified and unaware — must
//! replay through the conformance oracles with zero violations; the
//! criticality-*violating* configurations (crit-blind kill ordering and
//! preemption) are exercised by the test suite, where the oracle is shown
//! to catch them.
//!
//! Knobs: `M3_MIXED_CRIT_MAX_BATCH` caps the sweep's batch load (default
//! 8); `M3_MIXED_CRIT_BUDGET_S` asserts a per-point wall-clock budget;
//! `M3_JOBS` sets the worker count.

use m3_bench::{fmt_runtime, render_table, BenchTimer};
use m3_sim::clock::SimDuration;
use m3_sim::trace::{Criticality, TraceData};
use m3_sim::units::GIB;
use m3_workloads::fleet::{run_fleet, FleetConfig, FleetResult};
use m3_workloads::machine::MachineConfig;
use m3_workloads::scenario::mixed_criticality_scenario;
use m3_workloads::settings::Setting;
use m3_workloads::worker_threads;
use serde::Serialize;

/// The cache tier's latency SLO: submission-to-completion wall time, ms.
/// Generous against a solo run, tight enough that queueing behind a batch
/// backlog blows it.
const SLO_MS: u64 = 2_600_000;

#[derive(Serialize)]
struct MixedCritRow {
    /// Co-located batch k-means jobs ahead of the cache tier.
    batch: usize,
    /// `"classified"` or `"unaware"` (classes stripped).
    setting: String,
    workers: usize,
    wall_clock_s: f64,
    /// Cache-tier wall time from submission, seconds.
    cache_runtime_s: Option<f64>,
    /// Cache-tier SLO debt: max(0, runtime − SLO), ms; `None` = no run.
    slo_debt_ms: Option<u64>,
    /// Whether the cache tier met its SLO (unaware runs are scored against
    /// the same SLO the classified run declares).
    slo_met: Option<bool>,
    /// Admission deferrals the cache tier absorbed.
    cache_deferrals: u32,
    /// Reclamation-handler stall the cache tier absorbed, ms.
    cache_stall_ms: u64,
    /// Batch reservations preempted for the cache tier.
    preemptions: usize,
    /// Batch-tier completions (the cost side of the preemption trade).
    batch_completed: usize,
    batch_jobs: usize,
    /// Batch-tier requeues caused by preemption or node loss.
    batch_reschedules: u32,
    batch_mean_runtime_s: Option<f64>,
    violations: usize,
}

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.capture_trace = false;
    cfg.max_time = SimDuration::from_secs(60_000);
    cfg
}

/// One cramped 24-GiB node: its top of memory (~23.3 GiB) holds exactly one
/// 21-GiB batch k-means reservation, so the cache tier cannot co-locate
/// beside a batch resident — admission is a genuine criticality decision,
/// not a formality.
fn one_node_fleet() -> FleetConfig {
    let mut fleet = FleetConfig::homogeneous(1, 24 * GIB);
    fleet.rebalance_checks = 10;
    fleet.max_defers = 100;
    fleet
}

fn row_for(batch: usize, setting: &str, res: &FleetResult, wall_clock_s: f64) -> MixedCritRow {
    let cache = res.jobs.last().expect("the cache tier is the last job");
    let runtime_ms = cache.runtime_s.map(|s| (s * 1000.0).round() as u64);
    let preemptions = res
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e.data, TraceData::SchedClassPreempt { .. }))
        .count();
    let batch_jobs = &res.jobs[..batch];
    let batch_runtimes: Vec<f64> = batch_jobs.iter().filter_map(|j| j.runtime_s).collect();
    MixedCritRow {
        batch,
        setting: setting.to_string(),
        workers: worker_threads(),
        wall_clock_s,
        cache_runtime_s: cache.runtime_s,
        slo_debt_ms: runtime_ms.map(|ms| ms.saturating_sub(SLO_MS)),
        slo_met: runtime_ms.map(|ms| ms <= SLO_MS),
        cache_deferrals: cache.deferrals,
        cache_stall_ms: cache.stall_ms,
        preemptions,
        batch_completed: batch_runtimes.len(),
        batch_jobs: batch,
        batch_reschedules: batch_jobs.iter().map(|j| j.reschedules).sum(),
        batch_mean_runtime_s: if batch_runtimes.is_empty() {
            None
        } else {
            Some(batch_runtimes.iter().sum::<f64>() / batch_runtimes.len() as f64)
        },
        violations: res.violations.len(),
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn main() {
    let bench = BenchTimer::start("mixed_criticality");
    let max_batch = env_usize("M3_MIXED_CRIT_MAX_BATCH").unwrap_or(8);
    let budget_s = env_f64("M3_MIXED_CRIT_BUDGET_S");
    let fleet = one_node_fleet();
    println!(
        "Mixed-criticality co-location — batch load vs cache-tier SLO debt (SLO {SLO_MS} ms)\n"
    );

    let mut rows = Vec::new();
    for batch in [2usize, 4, 6, 8].into_iter().filter(|&b| b <= max_batch) {
        let classified = mixed_criticality_scenario(batch, SLO_MS);
        let unaware = classified.clone().with_classes(Vec::new());
        for (label, scenario) in [("classified", &classified), ("unaware", &unaware)] {
            let setting = Setting::m3(scenario.len());
            let started = std::time::Instant::now();
            let res = run_fleet(scenario, &setting, machine(), &fleet);
            let wall_clock_s = started.elapsed().as_secs_f64();
            rows.push(row_for(batch, label, &res, wall_clock_s));
            // The classified run's own SLO accounting must agree with the
            // bench's external scoring.
            if label == "classified" {
                let cache = res.jobs.last().expect("cache job");
                assert_eq!(cache.crit, Criticality::LatencyCritical);
                assert_eq!(cache.slo_ms, SLO_MS);
                assert_eq!(
                    cache.slo_met,
                    rows.last().expect("just pushed").slo_met,
                    "fleet SLO accounting disagrees with the bench at batch={batch}"
                );
            }
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.batch.to_string(),
                r.setting.clone(),
                fmt_runtime(r.cache_runtime_s),
                r.slo_debt_ms
                    .map_or_else(|| "FAIL".into(), |d| d.to_string()),
                r.slo_met
                    .map_or_else(|| "-".into(), |m| if m { "yes" } else { "NO" }.to_string()),
                r.cache_deferrals.to_string(),
                r.preemptions.to_string(),
                format!("{}/{}", r.batch_completed, r.batch_jobs),
                fmt_runtime(r.batch_mean_runtime_s),
                format!("{:.2}", r.wall_clock_s),
                r.violations.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "batch",
                "setting",
                "cache rt (s)",
                "SLO debt (ms)",
                "SLO met",
                "defers",
                "preempts",
                "batch done",
                "batch rt (s)",
                "wall (s)",
                "violations",
            ],
            &table
        )
    );

    for r in &rows {
        assert_eq!(
            r.violations, 0,
            "batch={} {} must pass the conformance oracles",
            r.batch, r.setting
        );
        assert!(
            r.cache_runtime_s.is_some(),
            "batch={} {}: the cache tier must complete",
            r.batch,
            r.setting
        );
        if r.setting == "classified" {
            assert_eq!(
                r.slo_met,
                Some(true),
                "batch={}: the classified scheduler must hold the cache SLO",
                r.batch
            );
        }
        if let Some(budget) = budget_s {
            assert!(
                r.wall_clock_s <= budget,
                "batch={} {} took {:.2}s, over the {budget}s budget",
                r.batch,
                r.setting,
                r.wall_clock_s
            );
        }
    }
    // The headline: at the highest swept load, classification is what holds
    // the SLO — the unaware baseline pays more debt than the classified run
    // at the same load.
    if let (Some(c), Some(u)) = (
        rows.iter()
            .rev()
            .find(|r| r.setting == "classified" && r.slo_debt_ms.is_some()),
        rows.iter()
            .rev()
            .find(|r| r.setting == "unaware" && r.slo_debt_ms.is_some()),
    ) {
        assert!(
            u.slo_debt_ms >= c.slo_debt_ms,
            "the unaware baseline must not beat the classified scheduler on SLO debt \
             (classified {:?} ms vs unaware {:?} ms at batch={})",
            c.slo_debt_ms,
            u.slo_debt_ms,
            u.batch
        );
    }
    bench.finish(&rows);
}
