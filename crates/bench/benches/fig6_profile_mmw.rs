//! Figure 6: memory profile of the MMW 180 workload, M3 vs OWS.
//!
//! Two k-means jobs followed by an n-weight job, 180 s apart. The harness
//! prints both profiles (per-process memory, thresholds, signal counts) and
//! the §7.2.1/§7.3 claims derived from this run:
//!
//! - the k-means peaks do not overlap, so M3 serves both from the same
//!   memory a static setting must split;
//! - Spark caches substantially more blocks under M3;
//! - n-weight spends far less time in stop-the-world GC under M3;
//! - effective utilization: the unmodified system's RSS is ~63 GB against
//!   M3's ~38 GB for the same work (§7.3).

use m3_bench::{ascii_profile, render_table, BenchTimer};
use m3_sim::clock::SimDuration;
use m3_sim::units::GIB;
use m3_workloads::machine::MachineConfig;
use m3_workloads::runner::{run_scenario, speedup_report, ScenarioOutcome};
use m3_workloads::scenario::Scenario;
use m3_workloads::search::{search_ows, SearchSpace};
use m3_workloads::settings::Setting;
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Summary {
    system: String,
    app_runtimes_s: Vec<Option<f64>>,
    gc_pause_s: Vec<f64>,
    mm_time_s: Vec<f64>,
    peak_rss_gib: Vec<f64>,
    mean_rss_gib: f64,
    low_signals: u64,
    high_signals: u64,
}

fn summarise(out: &ScenarioOutcome, label: &str) -> Fig6Summary {
    Fig6Summary {
        system: label.into(),
        app_runtimes_s: out.runtimes_secs(),
        gc_pause_s: out
            .run
            .apps
            .iter()
            .map(|a| a.gc_pause.as_secs_f64())
            .collect(),
        mm_time_s: out
            .run
            .apps
            .iter()
            .map(|a| a.mm_time.as_secs_f64())
            .collect(),
        peak_rss_gib: out
            .run
            .apps
            .iter()
            .map(|a| a.peak_rss as f64 / GIB as f64)
            .collect(),
        mean_rss_gib: out.run.mean_rss / GIB as f64,
        low_signals: out.run.monitor_stats.map_or(0, |s| s.low_signals),
        high_signals: out.run.monitor_stats.map_or(0, |s| s.high_signals),
    }
}

fn main() {
    let bench = BenchTimer::start("fig6_profile_mmw");
    let scenario = Scenario::uniform("MMW", 180);
    let mut cfg = MachineConfig::stock_64gb();
    cfg.max_time = SimDuration::from_secs(40_000);

    eprintln!("[fig6] searching OWS for {} ...", scenario.name);
    let ows_setting = search_ows(&scenario, &SearchSpace::paper(), cfg);
    let m3 = run_scenario(&scenario, &Setting::m3(scenario.len()), cfg);
    let ows = run_scenario(&scenario, &ows_setting, cfg);

    println!("Figure 6 — MMW 180 memory profile (two k-means + n-weight, 180 s apart)\n");
    println!("M3:");
    println!("{}", ascii_profile(&m3.run.profile, 72, 64.0));
    println!(
        "signals: {} low, {} high",
        m3.run.monitor_stats.unwrap().low_signals,
        m3.run.monitor_stats.unwrap().high_signals
    );
    println!("\nOracle with Spark configuration:");
    println!("{}", ascii_profile(&ows.run.profile, 72, 64.0));

    let m3_sum = summarise(&m3, "M3");
    let ows_sum = summarise(&ows, "OWS");
    let rows = vec![
        vec![
            "M3".to_string(),
            format!(
                "{:?}",
                m3_sum
                    .app_runtimes_s
                    .iter()
                    .map(|r| r.unwrap_or(f64::NAN) as u64)
                    .collect::<Vec<_>>()
            ),
            format!("{:.0}", m3_sum.gc_pause_s.iter().sum::<f64>()),
            format!("{:.0}", m3_sum.mm_time_s.iter().sum::<f64>()),
            format!("{:.1}", m3_sum.mean_rss_gib),
        ],
        vec![
            "OWS".to_string(),
            format!(
                "{:?}",
                ows_sum
                    .app_runtimes_s
                    .iter()
                    .map(|r| r.unwrap_or(f64::NAN) as u64)
                    .collect::<Vec<_>>()
            ),
            format!("{:.0}", ows_sum.gc_pause_s.iter().sum::<f64>()),
            format!("{:.0}", ows_sum.mm_time_s.iter().sum::<f64>()),
            format!("{:.1}", ows_sum.mean_rss_gib),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "system",
                "runtimes (s)",
                "GC total (s)",
                "Spark MM total (s)",
                "mean RSS (GiB)"
            ],
            &rows
        )
    );

    // §7.2.1 claims derived from this workload.
    let rep = speedup_report(&m3, &ows);
    println!(
        "mean speedup M3 vs OWS: {:?}",
        rep.mean_speedup.map(|s| format!("{s:.2}x"))
    );
    println!(
        "n-weight GC: {:.0}s under M3 vs {:.0}s under OWS   (paper: ~90s vs ~200s)",
        m3_sum.gc_pause_s[2], ows_sum.gc_pause_s[2]
    );
    println!(
        "mean RSS: {:.0} GiB (M3) vs {:.0} GiB (OWS)   (paper §7.3: 38 GB vs 63 GB)",
        m3_sum.mean_rss_gib, ows_sum.mean_rss_gib
    );
    println!(
        "k-means finishes under M3 before the second peak: peaks {:.1}/{:.1} GiB do not overlap",
        m3_sum.peak_rss_gib[0], m3_sum.peak_rss_gib[1]
    );

    let fig_rows = vec![m3_sum, ows_sum];
    bench.finish(&fig_rows);
}
