//! Figure 5: runtime performance of the twelve evaluation workloads.
//!
//! For each workload this harness runs M3 and the four unmodified settings
//! of §7.1.2 — Default, Globally Optimal (one per-kind configuration tuned
//! across all sixteen workloads), Oracle (best static partitioning per
//! workload) and Oracle-with-Spark-configuration — and reports the paper's
//! metric: the average of per-application speedups of M3 over each
//! baseline. `INF` marks workloads a baseline could not run at all.
//!
//! Expected shape (paper): average ≈ 1.60× vs OWS (best 3.05×), ≈ 1.86× vs
//! Oracle, ≈ 1.83× vs Globally Optimal, ≈ 2.62× vs Default counting only
//! the workloads Default finishes (nine of twelve cannot even run).
//!
//! The paper's four-month, 3,400-test configuration hunt is replaced by the
//! deterministic coordinate-descent grid search of `m3_workloads::search`;
//! expect this harness to run for several minutes.

use m3_bench::{fmt_speedup, render_table, BenchTimer};
use m3_sim::clock::SimDuration;
use m3_workloads::machine::MachineConfig;
use m3_workloads::runner::{run_scenario, speedup_report, ScenarioOutcome};
use m3_workloads::scenario::{all_scenarios, figure5_scenarios};
use m3_workloads::search::{
    search_global, search_oracle, search_ows, setting_from_kinds, SearchSpace,
};
use m3_workloads::settings::{Setting, SettingKind};
use serde::Serialize;

#[derive(Serialize)]
struct Fig5Row {
    workload: String,
    vs_default: Option<f64>,
    vs_global_optimal: Option<f64>,
    vs_oracle: Option<f64>,
    vs_ows: Option<f64>,
    m3_mean_runtime_s: Option<f64>,
}

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(40_000);
    cfg
}

fn mean(xs: &[Option<f64>]) -> Option<f64> {
    let vals: Vec<f64> = xs.iter().flatten().copied().collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

fn main() {
    let bench = BenchTimer::start("fig5_speedup");
    let cfg = machine();
    let space = SearchSpace::paper();

    // The Globally Optimal setting is tuned once, over all 16 workloads.
    eprintln!("[fig5] searching the Globally Optimal per-kind configuration ...");
    let global = search_global(&all_scenarios(), &space, cfg);

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut best: (String, f64) = (String::new(), 0.0);

    for scenario in figure5_scenarios() {
        eprintln!("[fig5] {} ...", scenario.name);
        let m3 = run_scenario(&scenario, &Setting::m3(scenario.len()), cfg);

        let default = run_scenario(&scenario, &Setting::default_for(scenario.len()), cfg);
        let go_setting = setting_from_kinds(SettingKind::GloballyOptimal, &global, &scenario);
        let go = run_scenario(&scenario, &go_setting, cfg);
        let oracle = run_scenario(&scenario, &search_oracle(&scenario, &space, cfg), cfg);
        let ows = run_scenario(&scenario, &search_ows(&scenario, &space, cfg), cfg);

        let reports: Vec<Option<f64>> = [&default, &go, &oracle, &ows]
            .iter()
            .map(|b: &&ScenarioOutcome| speedup_report(&m3, b).mean_speedup)
            .collect();

        if let Some(s) = reports[3] {
            if s > best.1 {
                best = (scenario.name.clone(), s);
            }
        }
        rows.push(vec![
            scenario.name.clone(),
            fmt_speedup(reports[0]),
            fmt_speedup(reports[1]),
            fmt_speedup(reports[2]),
            fmt_speedup(reports[3]),
        ]);
        json_rows.push(Fig5Row {
            workload: scenario.name.clone(),
            vs_default: reports[0],
            vs_global_optimal: reports[1],
            vs_oracle: reports[2],
            vs_ows: reports[3],
            m3_mean_runtime_s: m3.mean_runtime_secs(),
        });
    }

    println!("\nFigure 5 — M3 speedup over each setting (average of per-app speedups)\n");
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "vs Default",
                "vs Global Optimal",
                "vs Oracle",
                "vs OWS"
            ],
            &rows
        )
    );

    let avg = |f: fn(&Fig5Row) -> Option<f64>| mean(&json_rows.iter().map(f).collect::<Vec<_>>());
    println!(
        "averages (finite workloads only): vs Default {}  vs Global Optimal {}  vs Oracle {}  vs OWS {}",
        fmt_speedup(avg(|r| r.vs_default)),
        fmt_speedup(avg(|r| r.vs_global_optimal)),
        fmt_speedup(avg(|r| r.vs_oracle)),
        fmt_speedup(avg(|r| r.vs_ows)),
    );
    println!(
        "best case vs OWS: {} at {}   (paper: average 1.60x vs OWS, best 3.05x; 1.86x vs Oracle; 1.83x vs GO; 2.62x vs Default)",
        fmt_speedup(Some(best.1)),
        best.0
    );
    let default_failures = json_rows.iter().filter(|r| r.vs_default.is_none()).count();
    println!("workloads Default cannot run: {default_failures} of 12   (paper: nine of twelve)");

    bench.finish(&json_rows);
}
