//! Work-packet reclamation: scheduler conformance and harness scaling.
//!
//! Runs the fig6 (MMW 180) and fig7 (CMW 180) profile scenarios under M3
//! across a spread of node salts, twice: fanned out on one worker and on
//! eight. Asserts that
//!
//! - the two sweeps serialize byte-identically (worker count must never
//!   leak into simulation results — packet costing is the only parallel
//!   phase and packet mutations commit serially in id order);
//! - every run is oracle-clean: zero violations, which includes the
//!   `reclaim.packet.*` ordering, dependency, and byte-conservation
//!   invariants;
//! - every enqueued packet finished, and reclamation genuinely flowed
//!   through packets (non-zero packet traffic in every run);
//! - the 8-worker sweep beats the 1-worker sweep on wall clock when the
//!   host actually has cores to parallelize over (on a single-CPU host the
//!   requirement degrades to a bounded-overhead check, and the recorded
//!   `host_cpus` field makes the artifact self-explaining);
//! - packetization fragments the old lump-sum reclamation pause: the
//!   worst per-packet mutator stall is a fraction of the worst whole-drain
//!   stall, a simulated-latency win that is deterministic and independent
//!   of host parallelism.
//!
//! `M3_RECLAIM_PACKETS_SALTS` shrinks the per-scenario salt spread for CI
//! smoke runs; `M3_RECLAIM_PACKETS_REPS` sets the min-of-N timing repeats;
//! `M3_RECLAIM_PACKETS_BUDGET_S` asserts a total wall-clock budget.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use m3_bench::{render_table, BenchTimer};
use m3_sim::clock::SimDuration;
use m3_sim::trace::TraceData;
use m3_workloads::machine::MachineConfig;
use m3_workloads::parallel_map;
use m3_workloads::runner::{run_scenario, ScenarioOutcome};
use m3_workloads::scenario::Scenario;
use m3_workloads::settings::Setting;
use serde::Serialize;

#[derive(Serialize)]
struct KindCount {
    kind: String,
    packets: u64,
}

#[derive(Serialize)]
struct ReclaimPacketsReport {
    scenarios: Vec<String>,
    jobs: usize,
    packets_enqueued: u64,
    packets_finished: u64,
    packet_stalls: u64,
    packet_bytes: u64,
    packet_returned_bytes: u64,
    by_kind: Vec<KindCount>,
    violations: u64,
    byte_identical_across_workers: bool,
    host_cpus: usize,
    wall_clock_1_worker_s: f64,
    wall_clock_8_workers_s: f64,
    speedup_8_over_1: f64,
    max_drain_pause_ms: u64,
    max_packet_pause_ms: u64,
    pause_fragmentation: f64,
    drains: u64,
    mean_packets_per_drain: f64,
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// One sweep: every job simulated fresh (no memo cache) on `workers`
/// workers, returning the wall clock and the outcomes in submission order.
fn sweep(
    jobs: &[(Scenario, Setting, MachineConfig)],
    workers: usize,
) -> (f64, Vec<Arc<ScenarioOutcome>>) {
    let started = Instant::now();
    let outs = parallel_map(jobs.to_vec(), workers, |(s, set, cfg)| {
        Arc::new(run_scenario(&s, &set, cfg))
    });
    (started.elapsed().as_secs_f64(), outs)
}

/// Min-of-N wall clock for a sweep (the repeats simulate identical worlds —
/// pinned by `tests/determinism.rs` — so the minimum is the noise floor).
fn timed_sweep(
    jobs: &[(Scenario, Setting, MachineConfig)],
    workers: usize,
    reps: usize,
) -> (f64, Vec<Arc<ScenarioOutcome>>) {
    let mut best = f64::INFINITY;
    let mut outs = Vec::new();
    for _ in 0..reps.max(1) {
        let (wall, o) = sweep(jobs, workers);
        best = best.min(wall);
        outs = o;
    }
    (best, outs)
}

fn main() {
    let bench = BenchTimer::start("reclaim_packets");
    let salts = env_usize("M3_RECLAIM_PACKETS_SALTS").unwrap_or(16);
    let budget_s = env_f64("M3_RECLAIM_PACKETS_BUDGET_S");

    let scenarios = [Scenario::uniform("MMW", 180), Scenario::uniform("CMW", 180)];
    let mut jobs: Vec<(Scenario, Setting, MachineConfig)> = Vec::new();
    for scenario in &scenarios {
        for salt in 0..salts {
            let mut cfg = MachineConfig::m3_64gb();
            cfg.max_time = SimDuration::from_secs(40_000);
            cfg.sample_period = None;
            cfg.node_salt = salt as u64;
            jobs.push((scenario.clone(), Setting::m3(scenario.len()), cfg));
        }
    }

    eprintln!(
        "[reclaim_packets] {} jobs ({} scenarios x {salts} salts), warmup sweep ...",
        jobs.len(),
        scenarios.len()
    );
    // Untimed warmup so allocator and page-cache state do not bias
    // whichever timed sweep happens to run first.
    let _ = sweep(&jobs, 1);
    let reps = env_usize("M3_RECLAIM_PACKETS_REPS").unwrap_or(3);
    eprintln!("[reclaim_packets] 1-worker sweep ...");
    let (wall_1, serial) = timed_sweep(&jobs, 1, reps);
    eprintln!("[reclaim_packets] 8-worker sweep ...");
    let (wall_8, parallel) = timed_sweep(&jobs, 8, reps);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Worker count must never leak into results.
    let mut identical = true;
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        let sa = serde_json::to_string(&a.run).expect("serialize run");
        let sb = serde_json::to_string(&b.run).expect("serialize run");
        if sa != sb {
            identical = false;
            eprintln!("[reclaim_packets] job {i} diverged between 1 and 8 workers");
        }
    }
    assert!(identical, "worker count changed a simulation result");

    // Conformance and packet accounting over the (identical) outcomes.
    let mut violations = 0u64;
    let mut enqueued = 0u64;
    let mut started = 0u64;
    let mut finished = 0u64;
    let mut stalls = 0u64;
    let mut bytes = 0u64;
    let mut returned = 0u64;
    let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
    // Pause fragmentation: the worst whole-drain mutator stall (every
    // packet of one handler window, summed) vs the worst single-packet
    // stall — the incremental-reclamation win, in simulated time.
    let mut max_drain_pause = 0u64;
    let mut max_packet_pause = 0u64;
    let mut drains = 0u64;
    for (i, out) in serial.iter().enumerate() {
        assert!(out.run.all_finished(), "job {i}: every app must finish");
        violations += out.run.violations.len() as u64;
        let mut job_enq = 0u64;
        let mut job_fin = 0u64;
        let mut window: BTreeMap<u64, u64> = BTreeMap::new();
        for e in out.run.trace.events() {
            if e.data.kind() == "handler.start" {
                window.insert(e.pid, 0);
            }
            match &e.data {
                TraceData::PacketEnqueue { pkind, .. } => {
                    job_enq += 1;
                    *by_kind.entry(pkind.clone()).or_default() += 1;
                }
                TraceData::PacketStart { .. } => started += 1,
                TraceData::PacketStall { .. } => stalls += 1,
                TraceData::PacketFinish {
                    bytes: b,
                    returned: r,
                    duration_ms,
                    ..
                } => {
                    job_fin += 1;
                    bytes += b;
                    returned += r;
                    max_packet_pause = max_packet_pause.max(*duration_ms);
                    let w = window.entry(e.pid).or_insert(0);
                    if *w == 0 {
                        drains += 1;
                    }
                    *w += duration_ms;
                    max_drain_pause = max_drain_pause.max(*w);
                }
                _ => {}
            }
        }
        assert!(
            job_enq > 0,
            "job {i}: reclamation must flow through packets"
        );
        assert_eq!(
            job_enq, job_fin,
            "job {i}: every enqueued packet must finish"
        );
        enqueued += job_enq;
        finished += job_fin;
    }
    assert_eq!(
        violations, 0,
        "oracle violations in the packetized sweep (includes reclaim.packet.*)"
    );
    assert_eq!(enqueued, started, "every enqueued packet must start");

    let rows: Vec<Vec<String>> = by_kind
        .iter()
        .map(|(k, n)| vec![k.clone(), n.to_string()])
        .collect();
    println!("Work-packet reclamation — fig6/fig7 profile scenarios under M3\n");
    println!("{}", render_table(&["packet kind", "count"], &rows));
    println!(
        "\n{enqueued} packets enqueued, {finished} finished, {stalls} stall observations \
         across {} runs — 0 oracle violations",
        serial.len()
    );
    println!(
        "packet bytes: {:.2} GiB reclaimed, {:.2} GiB returned to the OS",
        bytes as f64 / (1u64 << 30) as f64,
        returned as f64 / (1u64 << 30) as f64
    );
    let fragmentation = max_drain_pause as f64 / (max_packet_pause.max(1)) as f64;
    let mean_split = finished as f64 / drains.max(1) as f64;
    println!(
        "worst mutator stall: {max_drain_pause} ms as one lump-sum drain, \
         {max_packet_pause} ms as the worst single packet ({fragmentation:.1}x split); \
         the mean drain yields to the mutator {mean_split:.1} times"
    );
    assert!(
        max_packet_pause < max_drain_pause,
        "packetization must fragment the lump-sum pause \
         ({max_packet_pause} ms vs {max_drain_pause} ms)"
    );
    let speedup = wall_1 / wall_8.max(1e-9);
    println!(
        "wall clock: {wall_1:.2}s on 1 worker vs {wall_8:.2}s on 8 workers \
         ({speedup:.2}x on {host_cpus} host cpu(s))"
    );
    if host_cpus > 1 {
        assert!(
            wall_8 < wall_1,
            "the 8-worker sweep must beat 1 worker on a {host_cpus}-cpu host \
             ({wall_8:.2}s vs {wall_1:.2}s)"
        );
    } else {
        // A single-cpu host cannot demonstrate thread-level speedup; hold
        // the scheduler to a bounded-overhead requirement instead.
        assert!(
            wall_8 <= wall_1 * 1.5,
            "8 workers on one cpu must stay within 1.5x of serial \
             ({wall_8:.2}s vs {wall_1:.2}s)"
        );
    }
    if let Some(budget) = budget_s {
        let total = wall_1 + wall_8;
        assert!(
            total <= budget,
            "sweeps took {total:.2}s, over the {budget}s budget"
        );
    }

    let report = ReclaimPacketsReport {
        scenarios: scenarios.iter().map(|s| s.name.clone()).collect(),
        jobs: jobs.len(),
        packets_enqueued: enqueued,
        packets_finished: finished,
        packet_stalls: stalls,
        packet_bytes: bytes,
        packet_returned_bytes: returned,
        by_kind: by_kind
            .into_iter()
            .map(|(kind, packets)| KindCount { kind, packets })
            .collect(),
        violations,
        byte_identical_across_workers: identical,
        host_cpus,
        wall_clock_1_worker_s: wall_1,
        wall_clock_8_workers_s: wall_8,
        speedup_8_over_1: speedup,
        max_drain_pause_ms: max_drain_pause,
        max_packet_pause_ms: max_packet_pause,
        pause_fragmentation: fragmentation,
        drains,
        mean_packets_per_drain: mean_split,
    };
    bench.finish(&report);
}
