//! Figure 8: M3's overhead in its theoretical worst cases.
//!
//! Four workloads of identical applications started with no delay: the
//! optimal distribution is a static equal partition and demands never
//! change relative to each other, so M3 has nothing to exploit and only
//! adds signal-handling overhead. The paper measures an average 3.77 %
//! slow-down vs OWS (worst case 7.00 %), while still beating the plain
//! Oracle on MMM 0 because default Spark parameters waste 40 % of the heap.

use m3_bench::{fmt_speedup, render_table, BenchTimer};
use m3_sim::clock::SimDuration;
use m3_workloads::machine::MachineConfig;
use m3_workloads::runner::{run_scenario, speedup_report};
use m3_workloads::scenario::figure8_scenarios;
use m3_workloads::search::{search_oracle, search_ows, SearchSpace};
use m3_workloads::settings::Setting;
use serde::Serialize;

#[derive(Serialize)]
struct Fig8Row {
    workload: String,
    vs_default: Option<f64>,
    vs_oracle: Option<f64>,
    vs_ows: Option<f64>,
}

fn main() {
    let bench = BenchTimer::start("fig8_worst_case");
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(40_000);
    let space = SearchSpace::paper();

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for scenario in figure8_scenarios() {
        eprintln!("[fig8] {} ...", scenario.name);
        let m3 = run_scenario(&scenario, &Setting::m3(scenario.len()), cfg);
        let default = run_scenario(&scenario, &Setting::default_for(scenario.len()), cfg);
        let oracle = run_scenario(&scenario, &search_oracle(&scenario, &space, cfg), cfg);
        let ows = run_scenario(&scenario, &search_ows(&scenario, &space, cfg), cfg);
        let d = speedup_report(&m3, &default).mean_speedup;
        let o = speedup_report(&m3, &oracle).mean_speedup;
        let w = speedup_report(&m3, &ows).mean_speedup;
        rows.push(vec![
            scenario.name.clone(),
            fmt_speedup(d),
            fmt_speedup(o),
            fmt_speedup(w),
        ]);
        json_rows.push(Fig8Row {
            workload: scenario.name,
            vs_default: d,
            vs_oracle: o,
            vs_ows: w,
        });
    }

    println!("\nFigure 8 — theoretical worst cases (identical apps, no delay)\n");
    println!(
        "{}",
        render_table(&["workload", "vs Default", "vs Oracle", "vs OWS"], &rows)
    );
    let ows_vals: Vec<f64> = json_rows.iter().filter_map(|r| r.vs_ows).collect();
    let mean = ows_vals.iter().sum::<f64>() / ows_vals.len() as f64;
    let worst = ows_vals.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "vs OWS: mean {:.2}x, worst {:.2}x   (paper: mean 0.962x — a 3.77% slow-down — and worst 0.93x)",
        mean, worst
    );
    println!(
        "MMM 0 vs plain Oracle: {}   (paper: M3 still beats Oracle — default Spark wastes 40% of the heap)",
        fmt_speedup(json_rows.last().expect("rows").vs_oracle)
    );

    bench.finish(&json_rows);
}
