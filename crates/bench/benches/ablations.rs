//! Ablations of M3's design choices (DESIGN.md §5).
//!
//! Each ablation flips one design decision and reruns a representative
//! workload under M3, reporting the mean per-app runtime:
//!
//! 1. **Algorithm 1 sort orders** — newest-first (the paper's default) vs
//!    oldest-first, largest-RSS and largest-expected-reclamation.
//! 2. **Selective vs signal-all notification** — disable Algorithm 1 and
//!    disturb every registered process on each red poll.
//! 3. **Threshold step size** — 0.5 %, 2 % (paper) and 8 % of top.
//! 4. **Reclamation order** — top-down (Spark evicts, then the JVM
//!    collects) vs the uncoordinated bottom-up order of §2.2 Problem 3.
//! 5. **Low-threshold early warning** — with and without the low signal
//!    (thresholds collapse to a single high threshold).

use m3_bench::{render_table, BenchTimer};
use m3_core::MonitorConfig;
use m3_core::SortOrder;
use m3_framework::SparkConfig;
use m3_runtime::JvmConfig;
use m3_sim::clock::SimDuration;
use m3_workloads::apps::AppBlueprint;
use m3_workloads::hibench;
use m3_workloads::machine::MachineConfig;
use m3_workloads::runner::run_scenario;
use m3_workloads::scenario::{AppKind, Scenario};
use m3_workloads::settings::{blueprint_for, AppConfig, Setting, M3_HEAP_CEILING};
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    ablation: String,
    variant: String,
    mean_runtime_s: Option<f64>,
}

fn machine(monitor: MonitorConfig) -> MachineConfig {
    let mut cfg = MachineConfig::stock_64gb();
    cfg.monitor = Some(monitor);
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(40_000);
    cfg
}

fn scenario() -> Scenario {
    Scenario::uniform("CMW", 180)
}

fn run_with_monitor(monitor: MonitorConfig) -> Option<f64> {
    let s = scenario();
    run_scenario(&s, &Setting::m3(s.len()), machine(monitor)).mean_runtime_secs()
}

/// Runs CMW with the M3 Spark blueprints overridden to the uncoordinated
/// bottom-up reclamation order.
fn run_bottom_up() -> Option<f64> {
    let s = scenario();
    let cfg = machine(MonitorConfig::paper_64gb());
    let machine = m3_workloads::machine::Machine::new(cfg);
    let schedule = s
        .apps
        .iter()
        .enumerate()
        .map(|(i, &(kind, start))| {
            let mut bp = blueprint_for(kind, &AppConfig::stock_default(), true);
            if let AppBlueprint::Spark { spark, .. } = &mut bp {
                *spark = SparkConfig {
                    gc_before_evict: true,
                    ..SparkConfig::m3()
                };
            }
            (m3_workloads::app_name(kind.code(), i), start, bp)
        })
        .collect();
    let res = machine.run(schedule);
    let rts: Vec<Option<f64>> = res
        .apps
        .iter()
        .map(|a| {
            if a.failed || a.killed {
                None
            } else {
                a.runtime().map(|d| d.as_secs_f64())
            }
        })
        .collect();
    if rts.iter().any(Option::is_none) {
        None
    } else {
        Some(rts.iter().flatten().sum::<f64>() / rts.len() as f64)
    }
}

fn main() {
    let bench = BenchTimer::start("ablations");
    println!(
        "Ablations on {} under M3 (mean per-app runtime, lower is better)\n",
        scenario().name
    );
    let mut rows: Vec<AblationRow> = Vec::new();

    // 1. Sort orders.
    for (label, order) in [
        ("newest-first (paper)", SortOrder::NewestFirst),
        ("oldest-first", SortOrder::OldestFirst),
        ("largest-rss", SortOrder::LargestRss),
        (
            "largest-expected-reclaim",
            SortOrder::LargestExpectedReclaim,
        ),
    ] {
        let mut m = MonitorConfig::paper_64gb();
        m.sort_order = order;
        rows.push(AblationRow {
            ablation: "sort order".into(),
            variant: label.into(),
            mean_runtime_s: run_with_monitor(m),
        });
    }

    // 2. Selective vs signal-all.
    let mut m = MonitorConfig::paper_64gb();
    m.signal_all = true;
    rows.push(AblationRow {
        ablation: "notification".into(),
        variant: "signal-all (no Algorithm 1)".into(),
        mean_runtime_s: run_with_monitor(m),
    });

    // 3. Threshold step sizes.
    for step in [0.005, 0.02, 0.08] {
        let mut m = MonitorConfig::paper_64gb();
        m.step_fraction = step;
        rows.push(AblationRow {
            ablation: "threshold step".into(),
            variant: format!("{:.1}% of top", step * 100.0),
            mean_runtime_s: run_with_monitor(m),
        });
    }

    // 4. Reclamation order.
    rows.push(AblationRow {
        ablation: "reclamation order".into(),
        variant: "top-down (paper)".into(),
        mean_runtime_s: run_with_monitor(MonitorConfig::paper_64gb()),
    });
    rows.push(AblationRow {
        ablation: "reclamation order".into(),
        variant: "bottom-up (GC before eviction)".into(),
        mean_runtime_s: run_bottom_up(),
    });

    // 5. Allow-rate recovery curves (footnote 4): the paper kept linear.
    for (label, curve) in [
        ("linear (paper)", m3_core::RateCurve::Linear),
        ("exponential", m3_core::RateCurve::Exponential),
        ("step", m3_core::RateCurve::Step),
    ] {
        let s = scenario();
        let cfg = machine(MonitorConfig::paper_64gb());
        let machine = m3_workloads::machine::Machine::new(cfg);
        let schedule = s
            .apps
            .iter()
            .enumerate()
            .map(|(i, &(kind, start))| {
                let mut bp = blueprint_for(kind, &AppConfig::stock_default(), true);
                if let AppBlueprint::Spark { spark, .. } = &mut bp {
                    spark.rate_curve = curve;
                }
                (m3_workloads::app_name(kind.code(), i), start, bp)
            })
            .collect();
        let res = machine.run(schedule);
        let rts: Vec<Option<f64>> = res
            .apps
            .iter()
            .map(|a| {
                if a.failed || a.killed {
                    None
                } else {
                    a.runtime().map(|d| d.as_secs_f64())
                }
            })
            .collect();
        let mean = if rts.iter().any(Option::is_none) {
            None
        } else {
            Some(rts.iter().flatten().sum::<f64>() / rts.len() as f64)
        };
        rows.push(AblationRow {
            ablation: "rate curve".into(),
            variant: label.into(),
            mean_runtime_s: mean,
        });
    }

    // 6. No early warning: low threshold pinned at the high threshold.
    let mut m = MonitorConfig::paper_64gb();
    m.initial_low = m.initial_high;
    rows.push(AblationRow {
        ablation: "early warning".into(),
        variant: "low threshold disabled".into(),
        mean_runtime_s: run_with_monitor(m),
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.ablation.clone(),
                r.variant.clone(),
                r.mean_runtime_s
                    .map_or("FAIL".into(), |v| format!("{v:.0}")),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["ablation", "variant", "mean runtime (s)"], &table)
    );
    bench.finish(&rows);

    // Keep the unused-import lints honest (these are exercised above via
    // blueprint construction).
    let _ = (
        JvmConfig::m3(M3_HEAP_CEILING),
        hibench::kmeans(),
        AppKind::KMeans,
    );
}
