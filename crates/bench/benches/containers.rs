//! Extension experiment: M3 vs per-container static limits (§9's question).
//!
//! The paper asks whether M3 extends to containers. The natural container
//! baseline — what MemOpLight's world looks like before its feedback loop —
//! is a static `memory.high` limit per application container: a container
//! that exceeds its limit receives reclaim pressure once per second, but
//! the limits themselves never move. This harness runs the CMW 180
//! workload with M3-capable applications under:
//!
//! 1. **M3** — one global monitor, adaptive thresholds, Algorithm 1;
//! 2. **equal containers** — 62 GiB split evenly;
//! 3. **demand-proportional containers** — limits proportional to each
//!    application's full working set (the best static guess an operator
//!    with perfect profiling could make).
//!
//! Expected: M3 wins both, because container limits cannot follow the
//! workload's phase shifts — the same reason static heaps lose in Fig. 5.

use m3_bench::{render_table, BenchTimer};
use m3_sim::clock::SimDuration;
use m3_sim::units::GIB;
use m3_workloads::machine::{Machine, MachineConfig, RunResult};
use m3_workloads::runner::run_scenario;
use m3_workloads::scenario::Scenario;
use m3_workloads::settings::{blueprint_for, AppConfig, Setting};
use serde::Serialize;

#[derive(Serialize)]
struct ContainerRow {
    policy: String,
    mean_runtime_s: Option<f64>,
    per_app_s: Vec<Option<f64>>,
}

fn mean_runtime(res: &RunResult) -> (Option<f64>, Vec<Option<f64>>) {
    let rts: Vec<Option<f64>> = res
        .apps
        .iter()
        .map(|a| {
            if a.failed || a.killed {
                None
            } else {
                a.runtime().map(|d| d.as_secs_f64())
            }
        })
        .collect();
    let mean = if rts.iter().any(Option::is_none) {
        None
    } else {
        Some(rts.iter().flatten().sum::<f64>() / rts.len() as f64)
    };
    (mean, rts)
}

fn run_containers(scenario: &Scenario, limits: Vec<u64>) -> (Option<f64>, Vec<Option<f64>>) {
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(40_000);
    // The apps are M3-capable (they can handle pressure signals), but the
    // pressure source is their container limit, not a global monitor.
    let schedule = scenario
        .apps
        .iter()
        .enumerate()
        .map(|(i, &(kind, start))| {
            let bp = blueprint_for(kind, &AppConfig::stock_default(), true);
            (m3_workloads::app_name(kind.code(), i), start, bp)
        })
        .collect();
    let res = Machine::new(cfg).run_with_containers(schedule, Some(limits));
    mean_runtime(&res)
}

fn main() {
    let bench = BenchTimer::start("containers");
    let scenario = Scenario::uniform("CMW", 180);
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(40_000);

    println!(
        "Containers extension — {} with M3-capable apps\n",
        scenario.name
    );
    let m3 = run_scenario(&scenario, &Setting::m3(scenario.len()), cfg);
    let (m3_mean, m3_apps) = {
        let (m, a) = (m3.mean_runtime_secs(), m3.runtimes_secs());
        (m, a)
    };

    // Equal split of the 62-GiB top.
    let equal = vec![62 * GIB / 3; 3];
    let (eq_mean, eq_apps) = run_containers(&scenario, equal);

    // Demand-proportional: working sets C ≈ 46, M ≈ 18, W ≈ 40 GiB → split
    // 62 GiB as 27/11/24.
    let prop = vec![27 * GIB, 11 * GIB, 24 * GIB];
    let (pr_mean, pr_apps) = run_containers(&scenario, prop);

    let rows = vec![
        ContainerRow {
            policy: "M3 (global monitor)".into(),
            mean_runtime_s: m3_mean,
            per_app_s: m3_apps,
        },
        ContainerRow {
            policy: "equal container limits".into(),
            mean_runtime_s: eq_mean,
            per_app_s: eq_apps,
        },
        ContainerRow {
            policy: "demand-proportional limits".into(),
            mean_runtime_s: pr_mean,
            per_app_s: pr_apps,
        },
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.mean_runtime_s
                    .map_or("FAIL".into(), |v| format!("{v:.0}")),
                r.per_app_s
                    .iter()
                    .map(|x| x.map_or("FAIL".into(), |v| format!("{v:.0}")))
                    .collect::<Vec<_>>()
                    .join(" / "),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["policy", "mean runtime (s)", "per-app (s)"], &table)
    );
    if let (Some(m), Some(p)) = (m3_mean, pr_mean) {
        println!(
            "M3 vs best container policy: {:.2}x  (static limits cannot follow phase shifts)",
            p / m
        );
    }
    bench.finish(&rows);
}
