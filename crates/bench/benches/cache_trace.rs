//! Key-granular cache-trace sweep: M3 vs Default vs static-limit under
//! production-shaped KV traffic (ROADMAP item 1).
//!
//! Each point replays a deterministic trace — Zipf(α = 1.2) popularity over
//! ≥ 1 M distinct keys, tiered value sizes, a 90/7/3 GET/SET/DELETE mix with
//! ~5 % negative lookups — against a Memcached server on a node sized so the
//! full working set does not fit (30 % coverage). The three policies face
//! the burst, diurnal, and hot-key-shift traffic phases on identical op
//! streams; every point's trace is replayed through the conformance oracle
//! and must come back clean.
//!
//! Knobs: `M3_CACHE_TRACE_KEYS` / `M3_CACHE_TRACE_OPS` scale the sweep down
//! (CI smoke); `M3_CACHE_TRACE_BUDGET_S` asserts a per-point wall-clock
//! budget; `M3_JOBS` sets the recorded worker count.

use m3_bench::{render_table, BenchTimer};
use m3_cache::{TraceWorkload, TrafficPattern};
use m3_sim::units::GIB;
use m3_workloads::kvtrace::{run_cache_trace_cached, CachePolicy};
use m3_workloads::worker_threads;
use serde::Serialize;

#[derive(Serialize)]
struct TraceRow {
    pattern: &'static str,
    policy: &'static str,
    keys: u64,
    ops: u64,
    /// Single-core wall clock of this point's simulation, seconds.
    wall_clock_s: f64,
    /// Simulated throughput: requests per simulated serve second.
    sim_ops_per_sec: f64,
    /// Engine speed: simulated requests per wall-clock second.
    ops_per_wall_s: f64,
    hit_ratio: f64,
    requests: u64,
    hits: u64,
    misses: u64,
    negative: u64,
    sets: u64,
    deletes: u64,
    delayed_puts: u64,
    evict_slabs_low: u64,
    evict_slabs_high: u64,
    evict_slabs_admission: u64,
    class_evictions: u64,
    capacity_items: u64,
    phys_gib: f64,
    resident_gib: f64,
    peak_rss_gib: f64,
    finished: bool,
    killed: bool,
    violations: usize,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn pattern_name(p: TrafficPattern) -> &'static str {
    match p {
        TrafficPattern::Steady => "steady",
        TrafficPattern::Burst => "burst",
        TrafficPattern::Diurnal => "diurnal",
        TrafficPattern::HotKeyShift => "hot-key-shift",
    }
}

fn main() {
    let bench = BenchTimer::start("cache_trace");
    let base = TraceWorkload::production(TrafficPattern::Steady);
    let keys = env_u64("M3_CACHE_TRACE_KEYS", base.key_space);
    let ops = env_u64("M3_CACHE_TRACE_OPS", base.total_ops);
    let budget_s = std::env::var("M3_CACHE_TRACE_BUDGET_S")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok());
    println!(
        "cache-trace sweep — {keys} keys, {ops} ops per point, {} workers\n",
        worker_threads()
    );

    let patterns = [
        TrafficPattern::Burst,
        TrafficPattern::Diurnal,
        TrafficPattern::HotKeyShift,
    ];
    let mut rows: Vec<TraceRow> = Vec::new();
    for pattern in patterns {
        let twl = TraceWorkload {
            key_space: keys,
            total_ops: ops,
            phase_ops: (ops / 4).max(1),
            ..TraceWorkload::production(pattern)
        };
        for policy in CachePolicy::ALL {
            let started = std::time::Instant::now();
            let out = run_cache_trace_cached(twl, policy);
            let wall_clock_s = started.elapsed().as_secs_f64();
            assert_eq!(
                out.violations,
                0,
                "{}/{} must replay oracle-clean: {:?}",
                pattern_name(pattern),
                policy.name(),
                out.violation_samples
            );
            if let Some(budget) = budget_s {
                assert!(
                    wall_clock_s <= budget,
                    "{}/{} took {wall_clock_s:.2}s, budget {budget}s",
                    pattern_name(pattern),
                    policy.name()
                );
            }
            let serve_s = out.serve_ms as f64 / 1000.0;
            rows.push(TraceRow {
                pattern: pattern_name(pattern),
                policy: policy.name(),
                keys,
                ops,
                wall_clock_s,
                sim_ops_per_sec: if serve_s > 0.0 {
                    out.requests as f64 / serve_s
                } else {
                    0.0
                },
                ops_per_wall_s: if wall_clock_s > 0.0 {
                    out.requests as f64 / wall_clock_s
                } else {
                    0.0
                },
                hit_ratio: out.hit_ratio(),
                requests: out.requests,
                hits: out.hits,
                misses: out.misses,
                negative: out.negative,
                sets: out.sets,
                deletes: out.deletes,
                delayed_puts: out.delayed,
                evict_slabs_low: out.evict_slabs_low,
                evict_slabs_high: out.evict_slabs_high,
                evict_slabs_admission: out.evict_slabs_admission,
                class_evictions: out.class_evictions,
                capacity_items: out.capacity_items,
                phys_gib: out.phys_bytes as f64 / GIB as f64,
                resident_gib: out.resident_bytes as f64 / GIB as f64,
                peak_rss_gib: out.peak_rss as f64 / GIB as f64,
                finished: out.finished,
                killed: out.killed,
                violations: out.violations,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.pattern.to_string(),
                r.policy.to_string(),
                format!("{:.3}", r.hit_ratio),
                format!("{:.0}k", r.sim_ops_per_sec / 1000.0),
                format!("{}", r.evict_slabs_low + r.evict_slabs_high),
                format!("{:.2}", r.peak_rss_gib),
                if r.killed {
                    "KILLED".into()
                } else if r.finished {
                    "ok".into()
                } else {
                    "capped".into()
                },
                format!("{:.2}", r.wall_clock_s),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "pattern",
                "policy",
                "hit ratio",
                "sim ops/s",
                "signal evictions",
                "peak rss (GiB)",
                "verdict",
                "wall (s)",
            ],
            &table
        )
    );
    println!("all {} points oracle-clean", rows.len());
    bench.finish(&rows);
}
