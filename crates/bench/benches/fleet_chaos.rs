//! Fleet-chaos experiment: node MTBF vs completion rate and runtime.
//!
//! Sweeps a deterministic node-failure rate (mean time between failures
//! across the fleet) over the wave-shaped fleet-scale workload and
//! reports, per point, how the self-healing scheduler degrades: nodes
//! lost, jobs lost / rescheduled / orphaned, completion rate and mean
//! runtime. Crash times and victims are drawn from `SimRng` with a fixed
//! per-row seed, so every point reproduces byte for byte. Each run must
//! pass the fleet oracle's recovery invariants — placements never land on
//! dead or quarantined nodes, and every lost job is rescheduled or
//! explicitly given up.
//!
//! Knobs: `M3_FLEET_CHAOS_NODES` sets the fleet size (default 512);
//! `M3_FLEET_CHAOS_BUDGET_S` asserts a per-point wall-clock budget;
//! `M3_JOBS` sets the worker count.

use m3_bench::{fmt_runtime, render_table, BenchTimer};
use m3_sim::clock::SimDuration;
use m3_sim::units::GIB;
use m3_sim::SimRng;
use m3_workloads::cluster::ClusterMean;
use m3_workloads::faults::FleetFaultPlan;
use m3_workloads::fleet::{run_fleet_with_faults, FleetConfig, NodeSpec};
use m3_workloads::machine::MachineConfig;
use m3_workloads::scenario::fleet_scale_scenario;
use m3_workloads::settings::Setting;
use m3_workloads::worker_threads;
use serde::Serialize;
use std::collections::BTreeSet;

/// Arrival window of the wave workload (ten waves, sixteen minutes
/// apart): the MTBF math is taken over this horizon.
const ACTIVE_WINDOW_S: u64 = 8_640;
/// Wave spacing of `fleet_scale_scenario`.
const WAVE_GAP_S: u64 = 960;
/// How far into a wave a crash may land. Jobs run ~390 s, so a crash in
/// the first six minutes of a wave hits live residents — drawing times
/// here (rather than uniformly, where half the horizon is drained gaps)
/// keeps every injected failure a real job-loss incident.
const WAVE_CRASH_WINDOW_S: (u64, u64) = (30, 360);

#[derive(Serialize)]
struct ChaosRow {
    /// Per-node mean time between failures, seconds; 0 = no failures.
    mtbf_s: u64,
    nodes: usize,
    jobs: usize,
    workers: usize,
    wall_clock_s: f64,
    crashes_injected: usize,
    nodes_lost: u64,
    jobs_lost: u64,
    jobs_rescheduled: u64,
    jobs_orphaned: u64,
    completed_apps: usize,
    failed_apps: usize,
    node_lost_apps: usize,
    completion_rate: f64,
    mean_runtime_s: Option<f64>,
    violations: usize,
}

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.capture_trace = false;
    cfg.max_time = SimDuration::from_secs(40_000);
    cfg
}

fn quarter_small_fleet(n: usize) -> FleetConfig {
    let mut fleet = FleetConfig::homogeneous(n, 64 * GIB);
    for (i, node) in fleet.nodes.iter_mut().enumerate() {
        if i % 4 == 3 {
            *node = NodeSpec {
                phys_total: 32 * GIB,
            };
        }
    }
    fleet
}

/// Poisson-ish failure schedule for one MTBF point: the expected crash
/// count over the active window, capped at a quarter of the fleet, with
/// distinct victims and fixed-seed times — deterministic by construction.
fn crash_plan(nodes: usize, mtbf_s: u64) -> FleetFaultPlan {
    let mut plan = FleetFaultPlan::none();
    if mtbf_s == 0 {
        return plan;
    }
    let expected = (nodes as u64 * ACTIVE_WINDOW_S / mtbf_s) as usize;
    let crashes = expected.min(nodes / 4).max(1);
    let mut rng = SimRng::new(0xC8A0_5EED ^ mtbf_s);
    let mut victims = BTreeSet::new();
    while victims.len() < crashes {
        victims.insert(rng.gen_range(nodes as u64) as usize);
    }
    for node in victims {
        let wave = rng.gen_range(ACTIVE_WINDOW_S / WAVE_GAP_S);
        let at = wave * WAVE_GAP_S + rng.gen_range_in(WAVE_CRASH_WINDOW_S.0, WAVE_CRASH_WINDOW_S.1);
        plan = plan.with_node_crash(SimDuration::from_secs(at), node);
    }
    plan
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn main() {
    let bench = BenchTimer::start("fleet_chaos");
    let nodes = env_usize("M3_FLEET_CHAOS_NODES").unwrap_or(512);
    let budget_s = env_f64("M3_FLEET_CHAOS_BUDGET_S");
    let scenario = fleet_scale_scenario(nodes);
    let fleet = quarter_small_fleet(nodes);
    let setting = Setting::m3(scenario.len());
    println!(
        "Fleet chaos — node MTBF sweep at {nodes} nodes, {} jobs\n",
        scenario.len()
    );

    let mut rows = Vec::new();
    for mtbf_s in [0u64, 172_800, 43_200, 14_400] {
        let plan = crash_plan(nodes, mtbf_s);
        let started = std::time::Instant::now();
        let res = run_fleet_with_faults(&scenario, &setting, machine(), &fleet, &plan);
        let wall_clock_s = started.elapsed().as_secs_f64();
        let ClusterMean {
            mean_secs,
            completed_apps,
            failed_apps,
            node_lost_apps,
            ..
        } = res.cluster.mean_runtime_secs();
        let d = &res.degradation;
        rows.push(ChaosRow {
            mtbf_s,
            nodes,
            jobs: scenario.len(),
            workers: worker_threads(),
            wall_clock_s,
            crashes_injected: plan.node_crashes.len(),
            nodes_lost: d.nodes_lost,
            jobs_lost: d.jobs_lost,
            jobs_rescheduled: d.jobs_rescheduled,
            jobs_orphaned: d.jobs_orphaned,
            completed_apps,
            failed_apps,
            node_lost_apps,
            completion_rate: completed_apps as f64 / scenario.len() as f64,
            mean_runtime_s: mean_secs,
            violations: res.violations.len(),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                if r.mtbf_s == 0 {
                    "∞".into()
                } else {
                    r.mtbf_s.to_string()
                },
                r.crashes_injected.to_string(),
                r.nodes_lost.to_string(),
                r.jobs_lost.to_string(),
                r.jobs_rescheduled.to_string(),
                r.jobs_orphaned.to_string(),
                format!("{:.1}%", r.completion_rate * 100.0),
                fmt_runtime(r.mean_runtime_s),
                format!("{:.2}", r.wall_clock_s),
                r.violations.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "MTBF (s)",
                "crashes",
                "nodes lost",
                "jobs lost",
                "rescheduled",
                "orphaned",
                "completion",
                "mean runtime (s)",
                "wall (s)",
                "violations",
            ],
            &table
        )
    );

    for r in &rows {
        assert_eq!(
            r.violations, 0,
            "MTBF {} point must pass the fleet oracle",
            r.mtbf_s
        );
        assert_eq!(
            r.jobs_lost,
            r.jobs_rescheduled + r.jobs_orphaned,
            "MTBF {}: every lost job must be rescheduled or orphaned",
            r.mtbf_s
        );
        if r.mtbf_s != 0 {
            assert!(
                r.nodes_lost > 0,
                "MTBF {} must actually lose nodes",
                r.mtbf_s
            );
        }
        if let Some(budget) = budget_s {
            assert!(
                r.wall_clock_s <= budget,
                "MTBF {} point took {:.2}s, over the {budget}s budget",
                r.mtbf_s,
                r.wall_clock_s
            );
        }
    }
    let clean = &rows[0];
    assert_eq!(clean.nodes_lost, 0, "the control point injects nothing");
    assert!(
        rows.iter().skip(1).all(|r| r.jobs_lost >= 1),
        "chaotic points must lose at least one resident job"
    );
    bench.finish(&rows);
}
