//! The paper's open question (§9): how far is M3 from optimal?
//!
//! "Ideally, we could measure the optimal memory distribution for each
//! workload used in our evaluation and compare it with M3. However,
//! searching for the optimal distribution is challenging." In the
//! simulation it is merely expensive: for a two-application workload
//! (Go-Cache + k-means, 120 s apart) this harness brute-forces *every*
//! static partition of the node at 2-GiB granularity — far finer than the
//! Oracle grid — and reports where M3 lands relative to the best and worst
//! static splits.
//!
//! Interpretation: `gap < 1` means M3 beats even the best static split
//! (possible — a static split cannot shift memory over time); `gap` close
//! to 1 means M3 is near-optimal among static distributions.

use m3_bench::{render_table, BenchTimer};
use m3_sim::clock::SimDuration;
use m3_sim::units::GIB;
use m3_workloads::machine::MachineConfig;
use m3_workloads::runner::run_scenario;
use m3_workloads::scenario::{AppKind, Scenario};
use m3_workloads::settings::{AppConfig, Setting, SettingKind};
use serde::Serialize;

#[derive(Serialize)]
struct GapPoint {
    kmeans_heap_gib: u64,
    cache_gib: u64,
    mean_runtime_s: Option<f64>,
}

fn scenario() -> Scenario {
    Scenario {
        name: "CM 120".into(),
        apps: vec![
            (AppKind::GoCache, SimDuration::ZERO),
            (AppKind::KMeans, SimDuration::from_secs(120)),
        ],
        classes: Vec::new(),
    }
}

fn main() {
    let bench = BenchTimer::start("optimality_gap");
    let mut cfg = MachineConfig::stock_64gb();
    cfg.sample_period = None;
    cfg.max_time = SimDuration::from_secs(40_000);
    let scenario = scenario();

    // Every static split: the k-means heap and the cache size sweep in
    // 2-GiB steps with the constraint that their sum stays within the node
    // (leaving 4 GiB of system headroom, mirroring the paper's top).
    let mut points = Vec::new();
    let mut best: Option<(f64, u64, u64)> = None;
    let mut worst: Option<f64> = None;
    for heap_gib in (6..=56).step_by(2) {
        for cache_gib in (4..=56).step_by(2) {
            if heap_gib + cache_gib > 60 {
                continue;
            }
            let setting = Setting {
                kind: SettingKind::Oracle,
                per_app: vec![
                    AppConfig {
                        cache_bytes: cache_gib * GIB,
                        ..AppConfig::stock_default()
                    },
                    AppConfig {
                        heap: heap_gib * GIB,
                        ..AppConfig::stock_default()
                    },
                ],
            };
            let mean = run_scenario(&scenario, &setting, cfg).mean_runtime_secs();
            if let Some(m) = mean {
                if best.is_none_or(|(b, _, _)| m < b) {
                    best = Some((m, heap_gib, cache_gib));
                }
                if worst.is_none_or(|w| m > w) {
                    worst = Some(m);
                }
            }
            points.push(GapPoint {
                kmeans_heap_gib: heap_gib,
                cache_gib,
                mean_runtime_s: mean,
            });
        }
    }
    let (best_s, best_heap, best_cache) = best.expect("at least one split runs");
    let m3 = run_scenario(&scenario, &Setting::m3(2), cfg)
        .mean_runtime_secs()
        .expect("M3 runs");

    println!(
        "Optimality gap on {} ({} static splits swept)\n",
        scenario.name,
        points.len()
    );
    let rows = vec![
        vec![
            "best static split".to_string(),
            format!("heap {best_heap} GiB / cache {best_cache} GiB"),
            format!("{best_s:.0}"),
        ],
        vec![
            "worst static split".to_string(),
            "-".to_string(),
            format!("{:.0}", worst.expect("ran")),
        ],
        vec!["M3".to_string(), "adaptive".to_string(), format!("{m3:.0}")],
    ];
    println!(
        "{}",
        render_table(&["distribution", "parameters", "mean runtime (s)"], &rows)
    );
    println!(
        "gap = M3 / best-static = {:.3}  (<1 means M3 beats every static split; \
         the paper left this measurement as future work)",
        m3 / best_s
    );

    bench.finish(&points);
}
