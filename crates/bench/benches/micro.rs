//! Criterion microbenchmarks for M3's hot paths.
//!
//! These measure the cost of the mechanisms themselves — the monitor poll,
//! Algorithm 1 selection, the adaptive allocation gate, runtime GC models
//! and the cache structures — plus a small end-to-end simulation as a
//! throughput canary. They are about the *reproduction's* performance, not
//! the paper's results (those live in the `fig*` harnesses).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use m3_cache::SlabCache;
use m3_core::selection::{select_processes, Candidate};
use m3_core::{AdaptiveAllocator, Monitor, MonitorConfig, SortOrder};
use m3_framework::BlockCache;
use m3_os::{Kernel, KernelConfig};
use m3_runtime::{Jvm, JvmConfig};
use m3_sim::clock::SimTime;
use m3_sim::trace::Criticality;
use m3_sim::units::{GIB, KIB, MIB};

fn bench_monitor_poll(c: &mut Criterion) {
    c.bench_function("monitor_poll_16_procs", |b| {
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let mut mon = Monitor::new(MonitorConfig::paper_64gb());
        for i in 0..16 {
            let pid = os.spawn(format!("p{i}"));
            os.grow(pid, 3 * GIB + i * 100 * MIB).unwrap();
            mon.register(pid);
        }
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(mon.poll(&mut os, SimTime::from_secs(t)));
            // Drain so coalescing does not change the workload over time.
            for pid in os.running_pids() {
                os.take_signals(pid);
            }
        });
    });
}

fn bench_selection(c: &mut Criterion) {
    c.bench_function("algorithm1_select_1000", |b| {
        let candidates: Vec<Candidate> = (0..1000)
            .map(|i| Candidate {
                pid: i,
                spawned_at: SimTime::from_secs(i % 97),
                rss: (i % 13) * GIB / 4,
                expected_reclaim: (i % 7 + 1) * 100 * MIB,
                crit: Criticality::ALL[i as usize % 3],
            })
            .collect();
        b.iter(|| {
            black_box(select_processes(
                black_box(&candidates),
                SortOrder::NewestFirst,
                50 * GIB,
            ))
        });
    });
}

fn bench_alloc_gate(c: &mut Criterion) {
    c.bench_function("adaptive_allocator_gate", |b| {
        let mut a = AdaptiveAllocator::new(5);
        a.on_high_signal(SimTime::ZERO);
        a.on_reclaim_done(SimTime::from_secs(2));
        let now = SimTime::from_secs(3);
        b.iter(|| black_box(a.should_delay(now)));
    });
}

fn bench_jvm_gc(c: &mut Criterion) {
    c.bench_function("jvm_young_gc_model", |b| {
        b.iter_batched(
            || {
                let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
                let pid = os.spawn("jvm");
                let mut jvm = Jvm::new(pid, JvmConfig::stock(16 * GIB));
                jvm.alloc_transient(&mut os, GIB).unwrap();
                (os, jvm)
            },
            |(mut os, mut jvm)| black_box(jvm.young_gc(&mut os)),
            BatchSize::SmallInput,
        );
    });
}

fn bench_block_cache(c: &mut Criterion) {
    c.bench_function("block_cache_access_evict_300", |b| {
        let mut cache = BlockCache::new(300 * 128 * MIB);
        for i in 0..300 {
            cache.insert(i, 128 * MIB);
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7) % 300;
            black_box(cache.access(i));
            if i.is_multiple_of(64) {
                if let Some((id, bytes)) = cache.evict_lru() {
                    cache.insert(id, bytes);
                }
            }
        });
    });
}

fn bench_slab_cache(c: &mut Criterion) {
    c.bench_function("slab_cache_insert_evict", |b| {
        let mut slabs = SlabCache::new(12_000_000, 4 * KIB, MIB, u64::MAX / 2);
        slabs.insert(6_000_000);
        b.iter(|| {
            black_box(slabs.insert(256));
            black_box(slabs.evict_slabs(1));
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    use m3_sim::clock::SimDuration;
    use m3_workloads::machine::MachineConfig;
    use m3_workloads::runner::run_scenario;
    use m3_workloads::scenario::Scenario;
    use m3_workloads::settings::Setting;
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("mmw180_under_m3", |b| {
        let mut cfg = MachineConfig::stock_64gb();
        cfg.sample_period = None;
        cfg.max_time = SimDuration::from_secs(40_000);
        let scenario = Scenario::uniform("MMW", 180);
        b.iter(|| black_box(run_scenario(black_box(&scenario), &Setting::m3(3), cfg)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_monitor_poll,
    bench_selection,
    bench_alloc_gate,
    bench_jvm_gc,
    bench_block_cache,
    bench_slab_cache,
    bench_end_to_end
);
criterion_main!(benches);
