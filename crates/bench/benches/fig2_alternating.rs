//! Figure 2: two JVM servers with alternating load peaks.
//!
//! A Cassandra-like and an Elasticsearch-like server (both *unmodified*
//! applications on the JVM) alternate 15-GB-class load peaks. On stock
//! JVMs each process climbs to its peak and never returns memory, so the
//! combined footprint is the sum of peaks (~30 GB); under M3 the modified
//! JVM returns collected regions and the combined footprint stays near one
//! peak plus one baseline (~15 GB).

use m3_bench::{ascii_profile, render_table, BenchTimer};
use m3_runtime::JvmConfig;
use m3_sim::clock::SimDuration;
use m3_sim::units::GIB;
use m3_workloads::alternating::AlternatingProfile;
use m3_workloads::apps::AppBlueprint;
use m3_workloads::machine::{Machine, MachineConfig};
use m3_workloads::settings::M3_HEAP_CEILING;
use serde::Serialize;

#[derive(Serialize)]
struct Fig2Row {
    system: String,
    combined_peak_gib: f64,
    combined_mean_gib: f64,
}

fn profile(offset_phases: u64) -> AlternatingProfile {
    let phase = SimDuration::from_secs(100);
    AlternatingProfile {
        baseline: 2 * GIB,
        peak: 13 * GIB,
        phase,
        offset: phase * offset_phases,
        churn_per_sec: 64 * 1024 * 1024,
        lifetime: SimDuration::from_secs(1000),
    }
}

fn run(m3: bool) -> (f64, f64, m3_sim::metrics::Profile) {
    let mut cfg = MachineConfig::scaled(64 * GIB, m3);
    cfg.max_time = SimDuration::from_secs(1200);
    let jvm = if m3 {
        JvmConfig::m3(M3_HEAP_CEILING)
    } else {
        JvmConfig::stock(16 * GIB)
    };
    let machine = Machine::new(cfg);
    let res = machine.run(vec![
        (
            "cassandra".into(),
            SimDuration::ZERO,
            AppBlueprint::Alternating {
                jvm,
                profile: profile(0),
            },
        ),
        (
            "elasticsearch".into(),
            SimDuration::ZERO,
            AppBlueprint::Alternating {
                jvm,
                profile: profile(1),
            },
        ),
    ]);
    let total = res.profile.series("total").expect("total series");
    (
        total.max().unwrap_or(0.0),
        total.mean().unwrap_or(0.0),
        res.profile,
    )
}

fn main() {
    let bench = BenchTimer::start("fig2_alternating");
    println!("Figure 2 — alternating-load JVM servers (Cassandra + Elasticsearch)\n");
    let (stock_peak, stock_mean, stock_profile) = run(false);
    let (m3_peak, m3_mean, m3_profile) = run(true);

    let rows = vec![
        vec![
            "Unmodified".to_string(),
            format!("{stock_peak:.1}"),
            format!("{stock_mean:.1}"),
        ],
        vec![
            "M3".to_string(),
            format!("{m3_peak:.1}"),
            format!("{m3_mean:.1}"),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["system", "combined peak (GiB)", "combined mean (GiB)"],
            &rows
        )
    );
    println!("Unmodified (paper: JVMs climb to a combined ~30 GB and stay):");
    println!("{}", ascii_profile(&stock_profile, 72, 32.0));
    println!("M3 (paper: ~15 GB suffices for the same completion time):");
    println!("{}", ascii_profile(&m3_profile, 72, 32.0));
    println!(
        "provisioning ratio unmodified/M3 = {:.2}x  (paper: ~2x — 30 GB vs 15 GB)",
        stock_peak / m3_peak
    );

    let fig_rows = vec![
        Fig2Row {
            system: "unmodified".into(),
            combined_peak_gib: stock_peak,
            combined_mean_gib: stock_mean,
        },
        Fig2Row {
            system: "m3".into(),
            combined_peak_gib: m3_peak,
            combined_mean_gib: m3_mean,
        },
    ];
    bench.finish(&fig_rows);
}
