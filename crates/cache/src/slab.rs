//! Statistical slab-store model.
//!
//! Items are fixed-size and live in fixed-size slabs. Under the uniform
//! access of the paper's benchmark, the cache hit ratio equals the resident
//! fraction of the key space, and evicting the LRU slab removes (on
//! average) one slab's worth of uniformly random items — so the store can
//! be modelled exactly with counters, with no per-key state.

use serde::{Deserialize, Serialize};

/// A slab-granular item store over a fixed key space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlabCache {
    /// Number of distinct keys the workload draws from.
    key_space: u64,
    /// Bytes per item (key + value + metadata).
    item_bytes: u64,
    /// Bytes per slab (a contiguous page run).
    slab_bytes: u64,
    /// Maximum resident bytes (stock configuration) — effectively unbounded
    /// under M3.
    max_bytes: u64,
    /// Items currently resident.
    resident: u64,
    /// Items evicted over the cache's lifetime.
    pub evicted_items: u64,
    /// Slabs evicted over the cache's lifetime.
    pub evicted_slabs: u64,
}

impl SlabCache {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics if sizes are zero or a slab cannot hold at least one item.
    pub fn new(key_space: u64, item_bytes: u64, slab_bytes: u64, max_bytes: u64) -> Self {
        assert!(key_space > 0, "key space must be positive");
        assert!(item_bytes > 0, "item size must be positive");
        assert!(
            slab_bytes >= item_bytes,
            "a slab must hold at least one item"
        );
        SlabCache {
            key_space,
            item_bytes,
            slab_bytes,
            max_bytes,
            resident: 0,
            evicted_items: 0,
            evicted_slabs: 0,
        }
    }

    /// Items per slab.
    pub fn items_per_slab(&self) -> u64 {
        self.slab_bytes / self.item_bytes
    }

    /// Items currently resident.
    pub fn resident_items(&self) -> u64 {
        self.resident
    }

    /// Bytes currently resident (whole slabs).
    pub fn resident_bytes(&self) -> u64 {
        self.slab_count() * self.slab_bytes
    }

    /// Number of (possibly partially filled) slabs in use.
    pub fn slab_count(&self) -> u64 {
        self.resident.div_ceil(self.items_per_slab())
    }

    /// The key space size.
    pub fn key_space(&self) -> u64 {
        self.key_space
    }

    /// The configured maximum resident bytes.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Expected hit ratio for a uniform-random get, in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        self.resident as f64 / self.key_space as f64
    }

    /// Inserts `n` new items (missed keys being filled), evicting LRU slabs
    /// first if the static capacity would be exceeded. Returns the number
    /// of items evicted to make room.
    pub fn insert(&mut self, n: u64) -> u64 {
        let n = n.min(self.key_space - self.resident);
        let mut evicted = 0;
        let needed_bytes = (self.resident + n).div_ceil(self.items_per_slab()) * self.slab_bytes;
        if needed_bytes > self.max_bytes {
            let over_slabs = (needed_bytes - self.max_bytes).div_ceil(self.slab_bytes);
            evicted = self.evict_slabs(over_slabs);
        }
        self.resident = (self.resident + n).min(self.key_space);
        evicted
    }

    /// Evicts up to `n` slabs (LRU ≈ arbitrary under uniform access),
    /// returning the number of items removed.
    pub fn evict_slabs(&mut self, n: u64) -> u64 {
        let n = n.min(self.slab_count());
        let items = (n * self.items_per_slab()).min(self.resident);
        self.resident -= items;
        self.evicted_items += items;
        self.evicted_slabs += n;
        items
    }

    /// Evicts the given fraction of slabs, rounding up (≥ 1 slab if any
    /// exist and the fraction is positive). Returns `(slabs, items)`
    /// evicted. This is the Table 1 policy: 1 % on a low signal, 4 % on a
    /// high signal. Edge cases: an empty cache, a non-positive fraction,
    /// and NaN all evict nothing; fractions ≥ 1 evict every slab.
    pub fn evict_fraction(&mut self, fraction: f64) -> (u64, u64) {
        if self.slab_count() == 0 || fraction.is_nan() || fraction <= 0.0 {
            return (0, 0);
        }
        let n = ((self.slab_count() as f64 * fraction).ceil() as u64).clamp(1, self.slab_count());
        let items = self.evict_slabs(n);
        (n, items)
    }

    /// Bytes of `n` slabs.
    pub fn slabs_to_bytes(&self, n: u64) -> u64 {
        n * self.slab_bytes
    }

    /// Bytes of `n` items.
    pub fn items_to_bytes(&self, n: u64) -> u64 {
        n * self.item_bytes
    }

    /// Removes everything (shutdown).
    pub fn clear(&mut self) {
        self.resident = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_sim::units::{GIB, KIB, MIB};

    fn cache(max: u64) -> SlabCache {
        // 1 MiB slabs of 4 KiB items: 256 items per slab.
        SlabCache::new(12_000_000, 4 * KIB, MIB, max)
    }

    #[test]
    fn geometry() {
        let c = cache(16 * GIB);
        assert_eq!(c.items_per_slab(), 256);
        assert_eq!(c.resident_items(), 0);
        assert_eq!(c.slab_count(), 0);
        assert_eq!(c.hit_ratio(), 0.0);
    }

    #[test]
    fn insert_fills_and_hit_ratio_tracks() {
        let mut c = cache(16 * GIB);
        assert_eq!(c.insert(6_000_000), 0);
        assert_eq!(c.resident_items(), 6_000_000);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn resident_never_exceeds_key_space() {
        let mut c = cache(u64::MAX / 2);
        c.insert(20_000_000);
        assert_eq!(c.resident_items(), 12_000_000);
    }

    #[test]
    fn capacity_forces_slab_eviction() {
        // 1 MiB capacity = one slab = 256 items.
        let mut c = cache(MIB);
        assert_eq!(c.insert(256), 0);
        let evicted = c.insert(10);
        assert!(evicted > 0, "full cache must evict a slab");
        assert!(
            c.resident_bytes() <= MIB + MIB,
            "at most transiently one slab over"
        );
        assert_eq!(c.evicted_slabs, 1);
    }

    #[test]
    fn evict_fraction_minimum_one_slab() {
        let mut c = cache(16 * GIB);
        c.insert(256 * 10); // 10 slabs
        let (slabs, items) = c.evict_fraction(0.01);
        assert_eq!(slabs, 1, "1% of 10 slabs rounds up to 1");
        assert_eq!(items, 256);
        let (slabs4, _) = c.evict_fraction(0.04);
        assert_eq!(slabs4, 1);
    }

    #[test]
    fn evict_fraction_of_empty() {
        let mut c = cache(16 * GIB);
        assert_eq!(c.evict_fraction(0.04), (0, 0));
    }

    #[test]
    fn evict_fraction_non_positive_is_a_noop() {
        let mut c = cache(16 * GIB);
        c.insert(256 * 10);
        assert_eq!(c.evict_fraction(0.0), (0, 0), "zero fraction");
        assert_eq!(c.evict_fraction(-0.04), (0, 0), "negative fraction");
        assert_eq!(c.evict_fraction(f64::NAN), (0, 0), "NaN fraction");
        assert_eq!(c.resident_items(), 256 * 10, "nothing left the cache");
    }

    #[test]
    fn evict_fraction_of_everything() {
        let mut c = cache(16 * GIB);
        c.insert(256 * 10);
        assert_eq!(c.evict_fraction(1.0), (10, 2560), "1.0 empties the cache");
        assert_eq!(c.resident_items(), 0);
        c.insert(256 * 10);
        assert_eq!(c.evict_fraction(7.5), (10, 2560), "so does any excess");
    }

    #[test]
    fn evict_fraction_rounding_pins_ceil() {
        // ceil(n · f) with a floor of one slab: the exact Table 1 maths
        // the oracle replays.
        let mut c = cache(u64::MAX / 2);
        c.insert(256 * 1000); // 1000 slabs
        assert_eq!(c.evict_fraction(0.0101).0, 11, "ceil(10.1) = 11");
        c.insert(256 * 11); // back to 1000
        assert_eq!(c.evict_fraction(0.001).0, 1, "ceil(1.0) = 1");
        c.insert(256); // back to 1000
        assert_eq!(c.evict_fraction(0.0001).0, 1, "floor of one slab");
    }

    #[test]
    fn evict_fraction_scales() {
        let mut c = cache(u64::MAX / 2);
        c.insert(256 * 1000); // 1000 slabs
        let (slabs, items) = c.evict_fraction(0.04);
        assert_eq!(slabs, 40);
        assert_eq!(items, 40 * 256);
        assert_eq!(c.resident_items(), 256 * 960);
    }

    #[test]
    fn byte_conversions() {
        let c = cache(GIB);
        assert_eq!(c.slabs_to_bytes(3), 3 * MIB);
        assert_eq!(c.items_to_bytes(10), 40 * KIB);
    }

    #[test]
    fn clear_empties() {
        let mut c = cache(GIB);
        c.insert(1000);
        c.clear();
        assert_eq!(c.resident_items(), 0);
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "slab must hold")]
    fn tiny_slab_rejected() {
        SlabCache::new(100, MIB, KIB, GIB);
    }
}
