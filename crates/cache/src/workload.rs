//! The cache benchmark workload description (§7.1.1).

use m3_sim::units::{GIB, KIB, MIB};
use serde::{Deserialize, Serialize};

/// A memtier-like uniform-random get/put benchmark over a key space.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KvWorkload {
    /// Distinct keys in the key space (the paper: 12 million).
    pub key_space: u64,
    /// Fraction of the key space preloaded before the measured phase
    /// (the paper: 85 %).
    pub preload_fraction: f64,
    /// Measured get requests (the paper: 6.5 million).
    pub total_requests: u64,
    /// Bytes per item.
    pub item_bytes: u64,
    /// Slab size (contiguous page run returned to the OS whole).
    pub slab_bytes: u64,
    /// Service cost of a hit, in microseconds of driver time (absorbs the
    /// benchmark's request concurrency).
    pub hit_us: u64,
    /// Extra cost of a miss: the simulated 1 ms backend lookup divided by
    /// the goroutine concurrency that overlaps it, plus the put.
    pub miss_extra_us: u64,
    /// Preload ingest rate, bytes per second of driver time.
    pub preload_bytes_per_sec: u64,
}

impl KvWorkload {
    /// The paper's Go-Cache benchmark: 12 M keys at 85 %, 6.5 M uniform
    /// gets, 1 ms backend penalty on a miss (overlapped by concurrency).
    pub fn paper_gocache() -> Self {
        KvWorkload {
            key_space: 12_000_000,
            preload_fraction: 0.85,
            total_requests: 6_500_000,
            item_bytes: 4 * KIB,
            slab_bytes: MIB,
            hit_us: 40,
            miss_extra_us: 330,
            preload_bytes_per_sec: GIB,
        }
    }

    /// A memtier-style Memcached benchmark scaled for the 8-GB node of
    /// Fig. 9 (smaller key space, same access pattern).
    pub fn paper_memtier() -> Self {
        KvWorkload {
            key_space: 1_500_000,
            preload_fraction: 0.85,
            total_requests: 2_000_000,
            item_bytes: 4 * KIB,
            slab_bytes: MIB,
            hit_us: 40,
            miss_extra_us: 330,
            preload_bytes_per_sec: GIB,
        }
    }

    /// Items preloaded before the measured phase.
    pub fn preload_items(&self) -> u64 {
        (self.key_space as f64 * self.preload_fraction) as u64
    }

    /// Peak resident bytes if nothing is ever evicted.
    pub fn full_bytes(&self) -> u64 {
        self.key_space * self.item_bytes
    }

    /// Expected per-request cost in microseconds at hit ratio `h`.
    pub fn request_cost_us(&self, h: f64) -> f64 {
        let h = h.clamp(0.0, 1.0);
        self.hit_us as f64 + (1.0 - h) * self.miss_extra_us as f64
    }

    /// Validates ranges.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters.
    pub fn validate(&self) {
        assert!(self.key_space > 0, "key space must be positive");
        assert!(
            (0.0..=1.0).contains(&self.preload_fraction),
            "preload in [0,1]"
        );
        assert!(
            self.item_bytes > 0 && self.slab_bytes >= self.item_bytes,
            "sizes"
        );
        assert!(self.hit_us > 0, "hit cost must be positive");
        assert!(
            self.preload_bytes_per_sec > 0,
            "preload rate must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let w = KvWorkload::paper_gocache();
        w.validate();
        assert_eq!(w.key_space, 12_000_000);
        assert_eq!(w.total_requests, 6_500_000);
        assert_eq!(w.preload_items(), 10_200_000);
        // 12 M × 4 KiB ≈ 45.8 GiB: the Fig. 7 Go-Cache peak neighbourhood.
        assert!(w.full_bytes() > 45 * GIB && w.full_bytes() < 47 * GIB);
    }

    #[test]
    fn request_cost_decreases_with_hit_ratio() {
        let w = KvWorkload::paper_gocache();
        assert!(w.request_cost_us(1.0) < w.request_cost_us(0.5));
        assert_eq!(w.request_cost_us(1.0), w.hit_us as f64);
        assert_eq!(w.request_cost_us(0.0), (w.hit_us + w.miss_extra_us) as f64);
        // Clamped outside [0, 1].
        assert_eq!(w.request_cost_us(2.0), w.hit_us as f64);
    }
}
