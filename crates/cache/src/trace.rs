//! Production-shaped KV trace generation (Twitter Twemcache / Meta KV).
//!
//! Generates the cache traffic described by SNIPPETS.md Snippet 3 and
//! ROADMAP item 1: Zipf(α≈1.2) key popularity over millions of keys, a
//! 90/7/3 GET/SET/DELETE mix, four value-size tiers from 16 B metadata
//! blobs to 1 MB media objects, and ~5 % negative lookups — plus burst /
//! diurnal / hot-key-shift phase schedules layered on top.
//!
//! Everything is deterministic and seedable, and nothing is O(key-space):
//!
//! - **Zipf sampling** uses rejection inversion (Hörmann & Derflinger's
//!   ZRI scheme, the same algorithm behind Apache Commons'
//!   `RejectionInversionZipfSampler`): O(1) per draw with no harmonic
//!   table. A precomputed head table covers the first 1024 ranks — where
//!   the overwhelming share of a skewed distribution's mass lives — so
//!   the hot path replaces two `powf` calls with a binary search over
//!   cached bin boundaries and an exact table-driven acceptance test.
//! - **Keys are 64-bit fingerprints**, derived from the rank by a
//!   SplitMix64-style mixer; negative lookups draw from a disjoint
//!   salted namespace so they can never hit.
//! - **Value sizes are a pure function of the fingerprint**, so a key
//!   keeps its size tier across fills and overwrites.
//! - **Phase schedules are integer rationals on the op index**: a pace
//!   `(num, den)` scales per-op service cost, so burst windows and
//!   diurnal cycles need no floating-point clocks.

use m3_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Ranks covered by the Zipf sampler's precomputed head table.
const ZIPF_HEAD_RANKS: u64 = 1024;

/// Salt separating the negative-lookup fingerprint namespace.
const NEGATIVE_SALT: u64 = 0xDEAD_BEEF_CAFE_F00D;

/// Salt for the per-key value-size hash.
const TIER_SALT: u64 = 0x5151_5151_A5A5_A5A5;

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Traffic phase schedule applied on top of the stationary mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Stationary load at the base service rate.
    Steady,
    /// Calm traffic with a 4× arrival surge in the last quarter of each
    /// window — flash-crowd behaviour.
    Burst,
    /// A smooth 16-step day/night cycle between 0.5× and 2× the base
    /// arrival rate.
    Diurnal,
    /// The popularity ranking rotates by an eighth of the key space each
    /// window: yesterday's cold keys become today's hot set.
    HotKeyShift,
}

/// A production-trace cache workload description.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TraceWorkload {
    /// Distinct (positive) keys the trace draws from.
    pub key_space: u64,
    /// Total operations in the measured phase.
    pub total_ops: u64,
    /// Zipf skew (Snippet 3: ~1.2 for Twitter cache traces).
    pub zipf_alpha: f64,
    /// GETs per 1000 ops (Snippet 3: 900).
    pub get_per_mille: u16,
    /// SETs per 1000 ops (Snippet 3: 70); the rest are DELETEs.
    pub set_per_mille: u16,
    /// Negative lookups per 1000 GETs (Snippet 3: ~50).
    pub negative_per_mille: u16,
    /// Fraction of the key space preloaded (most popular ranks first).
    pub preload_fraction: f64,
    /// Trace seed: same seed, same ops, bit for bit.
    pub seed: u64,
    /// Phase schedule.
    pub pattern: TrafficPattern,
    /// Ops per schedule window (surge period, diurnal day, shift epoch).
    pub phase_ops: u64,
    /// Service cost of a GET hit, microseconds.
    pub hit_us: u64,
    /// Extra cost of a miss (backend fetch + fill), microseconds.
    pub miss_extra_us: u64,
    /// Service cost of a SET, microseconds.
    pub set_us: u64,
    /// Service cost of a DELETE, microseconds.
    pub delete_us: u64,
    /// Preload fill rate, bytes per second.
    pub preload_bytes_per_sec: u64,
}

impl TraceWorkload {
    /// The full-scale sweep configuration: ≥1M distinct keys, 10M ops.
    pub fn production(pattern: TrafficPattern) -> Self {
        TraceWorkload {
            key_space: 1_200_000,
            total_ops: 10_000_000,
            zipf_alpha: 1.2,
            get_per_mille: 900,
            set_per_mille: 70,
            negative_per_mille: 50,
            preload_fraction: 0.30,
            seed: 0x7261_6365, // "race"
            pattern,
            phase_ops: 2_500_000,
            hit_us: 40,
            miss_extra_us: 330,
            set_us: 60,
            delete_us: 25,
            preload_bytes_per_sec: m3_sim::units::GIB,
        }
    }

    /// A scaled-down configuration for CI smoke and unit tests.
    pub fn smoke(pattern: TrafficPattern) -> Self {
        TraceWorkload {
            key_space: 120_000,
            total_ops: 1_000_000,
            phase_ops: 250_000,
            ..TraceWorkload::production(pattern)
        }
    }

    /// Panics on degenerate parameters.
    pub fn validate(&self) {
        assert!(self.key_space > 0, "key space must be positive");
        assert!(self.total_ops > 0, "trace must contain ops");
        assert!(self.zipf_alpha > 0.0, "zipf alpha must be positive");
        assert!(
            self.get_per_mille as u32 + self.set_per_mille as u32 <= 1000,
            "op mix exceeds 1000 per mille"
        );
        assert!(self.negative_per_mille <= 1000, "negative share per mille");
        assert!(
            (0.0..=1.0).contains(&self.preload_fraction),
            "preload fraction in [0,1]"
        );
        assert!(self.phase_ops > 0, "phase window must be positive");
        assert!(self.hit_us > 0, "hit cost must be positive");
        assert!(self.preload_bytes_per_sec > 0, "preload rate positive");
    }

    /// Items preloaded before the measured phase (most popular first).
    pub fn preload_items(&self) -> u64 {
        ((self.key_space as f64 * self.preload_fraction) as u64).min(self.key_space)
    }

    /// The fingerprint of key id `key` (0-based).
    #[inline]
    pub fn fp_of(&self, key: u64) -> u64 {
        mix64(key.wrapping_add(mix64(self.seed)))
    }

    /// A fingerprint in the negative namespace: drawn like a key but
    /// never inserted, so lookups on it always miss.
    #[inline]
    pub fn negative_fp(&self, draw: u64) -> u64 {
        mix64(draw.wrapping_add(mix64(self.seed ^ NEGATIVE_SALT)))
    }

    /// The value size of a key, bytes — a pure function of the
    /// fingerprint implementing Snippet 3's four tiers: 40 % tiny
    /// metadata (16–100 B), 50 % typical objects (512 B–2 KiB), 9 %
    /// medium blobs (10–50 KiB), 1 % large media (500 KiB–1 MiB).
    #[inline]
    pub fn value_bytes(&self, fp: u64) -> u64 {
        let h = mix64(fp ^ TIER_SALT);
        let (lo, hi) = match h % 100 {
            0..=39 => (16, 100),
            40..=89 => (512, 2_048),
            90..=98 => (10_240, 51_200),
            _ => (512_000, 1_048_576),
        };
        lo + mix64(h) % (hi - lo + 1)
    }

    /// The pace `(num, den)` for op `i`: per-op service cost is scaled by
    /// `num/den`, so a smaller ratio means faster arrivals.
    #[inline]
    pub fn pace(&self, i: u64) -> (u32, u32) {
        match self.pattern {
            TrafficPattern::Steady | TrafficPattern::HotKeyShift => (1, 1),
            TrafficPattern::Burst => {
                // Last quarter of each window surges to 4× arrivals.
                if (i % self.phase_ops) * 4 / self.phase_ops == 3 {
                    (1, 4)
                } else {
                    (1, 1)
                }
            }
            TrafficPattern::Diurnal => {
                // 16-step cycle: trough at 2× cost, peak at 0.5×.
                const CYCLE: [u32; 16] =
                    [20, 18, 16, 14, 12, 10, 9, 8, 7, 8, 9, 10, 12, 14, 16, 18];
                let slot = ((i % self.phase_ops) * 16 / self.phase_ops) as usize;
                (CYCLE[slot], 10)
            }
        }
    }

    /// Maps a Zipf rank (1-based) to a key id for op `i`, applying the
    /// hot-key-shift rotation.
    #[inline]
    pub fn key_of_rank(&self, rank: u64, i: u64) -> u64 {
        let key = rank - 1;
        match self.pattern {
            TrafficPattern::HotKeyShift => {
                let epoch = i / self.phase_ops;
                let shift = epoch.wrapping_mul(self.key_space / 8);
                (key + shift) % self.key_space
            }
            _ => key,
        }
    }
}

/// Rejection-inversion Zipf sampler (Hörmann & Derflinger ZRI).
///
/// Draws ranks in `1..=n` with P(k) ∝ k^(-α) in O(1) expected time and
/// O(1) memory beyond a fixed 1024-entry head table. The head table
/// caches the bin boundaries `H(k ± ½)` and densities `h(k)` for the
/// hottest ranks, replacing the `powf`-heavy inversion with a binary
/// search wherever the sample lands in the head — at α = 1.2 over a
/// million keys that is ~85 % of all draws.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    alpha: f64,
    one_minus: f64,
    /// `H(1.5) - h(1)`: the exclusive lower edge of the `u` range.
    h_x1: f64,
    /// `H(n + 0.5)`: the inclusive upper edge of the `u` range.
    h_n: f64,
    /// Quick-acceptance threshold `2 - H⁻¹(H(2.5) - h(2))`.
    s: f64,
    /// Head ranks covered by the tables.
    r: usize,
    /// `head_h[k] = H(k + 0.5)` for `k = 0..=r`.
    head_h: Vec<f64>,
    /// `head_hk[k] = h(k) = k^-α` for `k = 0..=r` (index 0 unused).
    head_hk: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over ranks `1..=n` with skew `alpha`.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n >= 1, "rank space must be non-empty");
        assert!(alpha > 0.0, "alpha must be positive");
        let one_minus = 1.0 - alpha;
        let h = |x: f64| -> f64 {
            if alpha == 1.0 {
                x.ln()
            } else {
                ((x.powf(one_minus)) - 1.0) / one_minus
            }
        };
        let h_inv = |y: f64| -> f64 {
            if alpha == 1.0 {
                y.exp()
            } else {
                (1.0 + one_minus * y).max(0.0).powf(1.0 / one_minus)
            }
        };
        let r = ZIPF_HEAD_RANKS.min(n) as usize;
        let head_h: Vec<f64> = (0..=r).map(|k| h(k as f64 + 0.5)).collect();
        let head_hk: Vec<f64> = (0..=r)
            .map(|k| if k == 0 { 0.0 } else { (k as f64).powf(-alpha) })
            .collect();
        ZipfSampler {
            n,
            alpha,
            one_minus,
            h_x1: h(1.5) - 1.0,
            h_n: h(n as f64 + 0.5),
            s: 2.0 - h_inv(h(2.5) - (2.0f64).powf(-alpha)),
            r,
            head_h,
            head_hk,
        }
    }

    #[inline]
    fn h_integral(&self, x: f64) -> f64 {
        if self.alpha == 1.0 {
            x.ln()
        } else {
            (x.powf(self.one_minus) - 1.0) / self.one_minus
        }
    }

    #[inline]
    fn h_integral_inv(&self, y: f64) -> f64 {
        if self.alpha == 1.0 {
            y.exp()
        } else {
            (1.0 + self.one_minus * y)
                .max(0.0)
                .powf(1.0 / self.one_minus)
        }
    }

    /// Draws one rank in `1..=n`.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        loop {
            // u spans (H(1.5) - h(1), H(n + 0.5)], covering all bins.
            let u = self.h_n + rng.gen_f64() * (self.h_x1 - self.h_n);
            if u < self.head_h[self.r] {
                // Head: binary-search the cached bin boundaries, then
                // run the exact acceptance test from the cached density.
                let k = self.head_h.partition_point(|&b| b <= u);
                debug_assert!((1..=self.r).contains(&k));
                if u >= self.head_h[k] - self.head_hk[k] {
                    return k as u64;
                }
            } else {
                let x = self.h_integral_inv(u);
                let k64 = ((x + 0.5) as u64).clamp(1, self.n);
                let k = k64 as f64;
                // Quick accept when x lands well inside the bin; exact
                // test otherwise.
                if k - x <= self.s || u >= self.h_integral(k + 0.5) - k.powf(-self.alpha) {
                    return k64;
                }
            }
        }
    }
}

/// One generated trace operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// What the client asked for.
    pub kind: TraceOpKind,
    /// The key fingerprint.
    pub fp: u64,
    /// Service-cost pace `(num, den)` for this op's schedule position.
    pub pace: (u32, u32),
}

/// The operation kind of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOpKind {
    /// A lookup; `negative` marks keys that were never stored.
    Get {
        /// Drawn from the never-inserted namespace.
        negative: bool,
    },
    /// An upsert.
    Set,
    /// A removal.
    Delete,
}

/// The deterministic trace-op stream for one workload.
#[derive(Debug, Clone)]
pub struct TraceGen {
    wl: TraceWorkload,
    zipf: ZipfSampler,
    rng: SimRng,
    next_op: u64,
}

impl TraceGen {
    /// Builds the generator for a validated workload.
    pub fn new(wl: TraceWorkload) -> Self {
        wl.validate();
        TraceGen {
            zipf: ZipfSampler::new(wl.key_space, wl.zipf_alpha),
            rng: SimRng::new(wl.seed ^ 0x74726163), // "trac"
            wl,
            next_op: 0,
        }
    }

    /// The workload description.
    pub fn workload(&self) -> &TraceWorkload {
        &self.wl
    }

    /// Ops generated so far.
    pub fn generated(&self) -> u64 {
        self.next_op
    }

    /// True once the full trace has been generated.
    pub fn exhausted(&self) -> bool {
        self.next_op >= self.wl.total_ops
    }
}

/// Op generation is the iterator protocol: `None` at end of trace.
impl Iterator for TraceGen {
    type Item = TraceOp;

    #[inline]
    fn next(&mut self) -> Option<TraceOp> {
        if self.next_op >= self.wl.total_ops {
            return None;
        }
        let i = self.next_op;
        self.next_op += 1;
        let pace = self.wl.pace(i);
        let mix = self.rng.gen_range(1000) as u16;
        let (kind, fp) = if mix < self.wl.get_per_mille {
            let negative = (self.rng.gen_range(1000) as u16) < self.wl.negative_per_mille;
            let rank = self.zipf.sample(&mut self.rng);
            let fp = if negative {
                self.wl.negative_fp(rank)
            } else {
                self.wl.fp_of(self.wl.key_of_rank(rank, i))
            };
            (TraceOpKind::Get { negative }, fp)
        } else {
            let rank = self.zipf.sample(&mut self.rng);
            let fp = self.wl.fp_of(self.wl.key_of_rank(rank, i));
            if mix < self.wl.get_per_mille + self.wl.set_per_mille {
                (TraceOpKind::Set, fp)
            } else {
                (TraceOpKind::Delete, fp)
            }
        };
        Some(TraceOp { kind, fp, pace })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic() {
        let z = ZipfSampler::new(1_000_000, 1.2);
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..10_000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn zipf_stays_in_range() {
        for n in [1u64, 2, 5, 1000, 2_000_000] {
            let z = ZipfSampler::new(n, 1.2);
            let mut rng = SimRng::new(n);
            for _ in 0..2000 {
                let k = z.sample(&mut rng);
                assert!((1..=n).contains(&k), "rank {k} outside 1..={n}");
            }
        }
    }

    #[test]
    fn zipf_matches_harmonic_mass() {
        // P(1) = 1/H(n, α); empirical frequency must agree closely.
        let n = 100_000u64;
        let alpha = 1.2;
        let z = ZipfSampler::new(n, alpha);
        let mut rng = SimRng::new(42);
        let draws = 400_000;
        let mut top = [0u64; 8];
        for _ in 0..draws {
            let k = z.sample(&mut rng);
            if k <= 8 {
                top[(k - 1) as usize] += 1;
            }
        }
        let hn: f64 = (1..=n).map(|k| (k as f64).powf(-alpha)).sum();
        for (i, &c) in top.iter().enumerate() {
            let want = ((i + 1) as f64).powf(-alpha) / hn;
            let got = c as f64 / draws as f64;
            assert!(
                (got - want).abs() < want * 0.1 + 0.001,
                "rank {}: got {got:.4}, want {want:.4}",
                i + 1
            );
        }
        assert!(top[0] > top[3] && top[3] > top[7], "mass decreases in rank");
    }

    #[test]
    fn zipf_head_covers_most_draws_and_tail_is_reached() {
        let z = ZipfSampler::new(1_000_000, 1.2);
        let mut rng = SimRng::new(9);
        let (mut head, mut tail) = (0u64, 0u64);
        for _ in 0..100_000 {
            if z.sample(&mut rng) <= ZIPF_HEAD_RANKS {
                head += 1;
            } else {
                tail += 1;
            }
        }
        assert!(head > 70_000, "head table absorbs most draws: {head}");
        assert!(tail > 1_000, "tail ranks still drawn: {tail}");
    }

    #[test]
    fn zipf_alpha_one_uses_log_branch() {
        let z = ZipfSampler::new(10_000, 1.0);
        let mut rng = SimRng::new(3);
        let mut first = 0u64;
        for _ in 0..50_000 {
            if z.sample(&mut rng) == 1 {
                first += 1;
            }
        }
        // P(1) = 1/H(10000) ≈ 1/9.79 ≈ 0.102.
        let got = first as f64 / 50_000.0;
        assert!((got - 0.102).abs() < 0.01, "alpha=1 P(1): {got}");
    }

    #[test]
    fn value_tiers_match_snippet3_shares() {
        let wl = TraceWorkload::smoke(TrafficPattern::Steady);
        let mut shares = [0u64; 4];
        let keys = 200_000u64;
        for k in 0..keys {
            let v = wl.value_bytes(wl.fp_of(k));
            let tier = match v {
                16..=100 => 0,
                512..=2048 => 1,
                10_240..=51_200 => 2,
                512_000..=1_048_576 => 3,
                other => panic!("value {other} outside every tier"),
            };
            shares[tier] += 1;
        }
        let pct = |s: u64| s as f64 * 100.0 / keys as f64;
        assert!(
            (pct(shares[0]) - 40.0).abs() < 1.5,
            "tiny {}",
            pct(shares[0])
        );
        assert!((pct(shares[1]) - 50.0).abs() < 1.5, "typical tier");
        assert!((pct(shares[2]) - 9.0).abs() < 1.0, "medium tier");
        assert!((pct(shares[3]) - 1.0).abs() < 0.5, "large tier");
    }

    #[test]
    fn value_bytes_is_stable_per_key() {
        let wl = TraceWorkload::smoke(TrafficPattern::Steady);
        let fp = wl.fp_of(123);
        assert_eq!(wl.value_bytes(fp), wl.value_bytes(fp));
    }

    #[test]
    fn op_mix_and_negative_share() {
        let mut gen = TraceGen::new(TraceWorkload {
            total_ops: 300_000,
            ..TraceWorkload::smoke(TrafficPattern::Steady)
        });
        let (mut gets, mut sets, mut dels, mut negs) = (0u64, 0u64, 0u64, 0u64);
        while let Some(op) = gen.next() {
            match op.kind {
                TraceOpKind::Get { negative } => {
                    gets += 1;
                    negs += negative as u64;
                }
                TraceOpKind::Set => sets += 1,
                TraceOpKind::Delete => dels += 1,
            }
        }
        let total = (gets + sets + dels) as f64;
        assert!((gets as f64 / total - 0.90).abs() < 0.01, "GET share");
        assert!((sets as f64 / total - 0.07).abs() < 0.01, "SET share");
        assert!((dels as f64 / total - 0.03).abs() < 0.01, "DELETE share");
        assert!(
            (negs as f64 / gets as f64 - 0.05).abs() < 0.01,
            "negative share of GETs"
        );
    }

    #[test]
    fn negative_namespace_is_disjoint() {
        let wl = TraceWorkload::smoke(TrafficPattern::Steady);
        let positives: std::collections::HashSet<u64> =
            (0..wl.key_space).map(|k| wl.fp_of(k)).collect();
        for rank in 1..=10_000 {
            assert!(
                !positives.contains(&wl.negative_fp(rank)),
                "negative fp for rank {rank} collides with a real key"
            );
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let wl = TraceWorkload::smoke(TrafficPattern::Burst);
        let mut a = TraceGen::new(wl);
        let mut b = TraceGen::new(wl);
        for _ in 0..20_000 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn burst_pace_surges_last_quarter() {
        let wl = TraceWorkload {
            phase_ops: 1000,
            ..TraceWorkload::smoke(TrafficPattern::Burst)
        };
        assert_eq!(wl.pace(0), (1, 1));
        assert_eq!(wl.pace(749), (1, 1));
        assert_eq!(wl.pace(750), (1, 4));
        assert_eq!(wl.pace(999), (1, 4));
        assert_eq!(wl.pace(1000), (1, 1), "next window starts calm");
        let surged = (0..1000).filter(|&i| wl.pace(i) == (1, 4)).count();
        assert_eq!(surged, 250, "exactly a quarter of the window surges");
    }

    #[test]
    fn diurnal_pace_cycles_through_the_table() {
        let wl = TraceWorkload {
            phase_ops: 1600,
            ..TraceWorkload::smoke(TrafficPattern::Diurnal)
        };
        assert_eq!(wl.pace(0), (20, 10), "midnight trough is 2× cost");
        assert_eq!(wl.pace(800), (7, 10), "midday peak is 0.7× cost");
        assert_eq!(wl.pace(1600), (20, 10), "cycle repeats");
        let distinct: std::collections::HashSet<(u32, u32)> =
            (0..1600).map(|i| wl.pace(i)).collect();
        assert_eq!(distinct.len(), 9, "cycle visits every pace level");
    }

    #[test]
    fn hot_key_shift_rotates_the_ranking() {
        let wl = TraceWorkload {
            phase_ops: 1000,
            ..TraceWorkload::smoke(TrafficPattern::HotKeyShift)
        };
        let hot_before = wl.key_of_rank(1, 0);
        let hot_after = wl.key_of_rank(1, 1000);
        assert_ne!(hot_before, hot_after, "rank 1 maps to a new key");
        assert_eq!(
            (hot_after + wl.key_space - hot_before) % wl.key_space,
            wl.key_space / 8,
            "rotation step is an eighth of the key space"
        );
        // The old hot key is still reachable, at a shifted rank.
        assert_eq!(
            wl.key_of_rank(1, 0),
            wl.key_of_rank(1 + 7 * wl.key_space / 8, 1000)
        );
    }

    #[test]
    fn trace_throughput_is_fast_enough_to_sweep() {
        // The tentpole's hot-path requirement: generating ops must be
        // O(1) each. 500k ops in well under a second even in debug CI.
        let mut gen = TraceGen::new(TraceWorkload {
            total_ops: 500_000,
            ..TraceWorkload::smoke(TrafficPattern::Diurnal)
        });
        let start = std::time::Instant::now();
        let mut acc = 0u64;
        while let Some(op) = gen.next() {
            acc ^= op.fp;
        }
        assert_ne!(acc, 0);
        assert!(
            start.elapsed().as_secs_f64() < 20.0,
            "trace generation unexpectedly slow"
        );
    }
}
