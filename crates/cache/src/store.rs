//! Key-granular slab store (memcached-style slab classes).
//!
//! Where [`crate::slab::SlabCache`] models the uniform-access benchmark
//! analytically, this store tracks every resident key so skewed (Zipf)
//! traffic and tiered value sizes behave like a real slab allocator:
//!
//! - **Slab classes**: chunk sizes double from 64 B up to the slab size
//!   (1 MiB by default); an item occupies one chunk of the smallest class
//!   that fits `value + overhead`.
//! - **Sharded fingerprint index**: 64 open-addressing shards keyed by the
//!   top bits of a 64-bit key fingerprint — no string keys anywhere on the
//!   hot path. Linear probing with backward-shift deletion keeps probes
//!   short without tombstones.
//! - **Intrusive per-class LRU**: entries live in one arena and link by
//!   `u32` index, so a get/insert/delete does zero heap allocation.
//! - **Slab-granular eviction**: when M3 demands bytes back, whole slabs
//!   are reclaimed per class — dead chunks evaporate first, then the
//!   class's LRU tail is sampled, which is how memcached's slab
//!   rebalancer approximates LRU at slab granularity.
//!
//! Everything is integer arithmetic over a deterministic layout: the same
//! operation sequence yields bit-identical state on every run.

use serde::{Deserialize, Serialize};

/// Sentinel index for "no entry" in intrusive links and index slots.
const NONE: u32 = u32::MAX;

/// Number of index shards (fixed; selected by the fingerprint's top bits).
const SHARDS: usize = 64;

/// Initial slot count per shard (power of two).
const SHARD_MIN_CAP: usize = 64;

/// Per-item metadata bytes (key, header, links) added to the value when
/// choosing a chunk class — memcached's `item` header plus a short key.
pub const ITEM_OVERHEAD: u64 = 56;

/// Smallest chunk class, bytes.
pub const MIN_CHUNK: u64 = 64;

/// One resident item. `prev`/`next` link the class LRU (head = most
/// recently used); freed entries chain through `next` on the free list.
#[derive(Debug, Clone, Copy)]
struct Entry {
    fp: u64,
    prev: u32,
    next: u32,
    class: u8,
}

/// One open-addressing index shard mapping fingerprint → arena index.
#[derive(Debug, Clone)]
struct Shard {
    fps: Vec<u64>,
    idxs: Vec<u32>,
    live: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            fps: vec![0; SHARD_MIN_CAP],
            idxs: vec![NONE; SHARD_MIN_CAP],
            live: 0,
        }
    }

    #[inline]
    fn mask(&self) -> usize {
        self.fps.len() - 1
    }

    /// Finds the slot holding `fp`, or `None`.
    #[inline]
    fn find_slot(&self, fp: u64) -> Option<usize> {
        let mask = self.mask();
        let mut i = (fp as usize) & mask;
        loop {
            if self.idxs[i] == NONE {
                return None;
            }
            if self.fps[i] == fp {
                return Some(i);
            }
            i = (i + 1) & mask;
        }
    }

    #[inline]
    fn get(&self, fp: u64) -> Option<u32> {
        self.find_slot(fp).map(|i| self.idxs[i])
    }

    fn insert(&mut self, fp: u64, idx: u32) {
        if (self.live + 1) * 4 > self.fps.len() * 3 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = (fp as usize) & mask;
        while self.idxs[i] != NONE {
            debug_assert_ne!(self.fps[i], fp, "duplicate fingerprint insert");
            i = (i + 1) & mask;
        }
        self.fps[i] = fp;
        self.idxs[i] = idx;
        self.live += 1;
    }

    /// Removes `fp`, backward-shifting the probe run so lookups never need
    /// tombstones. Returns the arena index that was stored.
    fn remove(&mut self, fp: u64) -> Option<u32> {
        let mut i = self.find_slot(fp)?;
        let out = self.idxs[i];
        let mask = self.mask();
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            if self.idxs[j] == NONE {
                break;
            }
            let ideal = (self.fps[j] as usize) & mask;
            // Slot j may shift into the hole at i only if i lies within
            // j's probe run (cyclically between its ideal slot and j).
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(i) & mask) {
                self.fps[i] = self.fps[j];
                self.idxs[i] = self.idxs[j];
                i = j;
            }
        }
        self.idxs[i] = NONE;
        self.fps[i] = 0;
        self.live -= 1;
        Some(out)
    }

    fn grow(&mut self) {
        let new_cap = self.fps.len() * 2;
        let old_fps = std::mem::replace(&mut self.fps, vec![0; new_cap]);
        let old_idxs = std::mem::replace(&mut self.idxs, vec![NONE; new_cap]);
        let mask = new_cap - 1;
        for (fp, idx) in old_fps.into_iter().zip(old_idxs) {
            if idx == NONE {
                continue;
            }
            let mut i = (fp as usize) & mask;
            while self.idxs[i] != NONE {
                i = (i + 1) & mask;
            }
            self.fps[i] = fp;
            self.idxs[i] = idx;
        }
    }
}

/// One slab class: all chunks of a given size.
#[derive(Debug, Clone, Copy)]
struct SlabClass {
    /// Chunk size, bytes (power of two).
    chunk: u64,
    /// Chunks per slab.
    per_slab: u64,
    /// Slabs assigned to this class.
    slabs: u64,
    /// Live items (= used chunks).
    live: u64,
    /// Previously used chunks now free for reuse.
    free_chunks: u64,
    /// LRU list head (most recently used) and tail.
    head: u32,
    tail: u32,
}

impl SlabClass {
    fn capacity(&self) -> u64 {
        self.slabs * self.per_slab
    }
}

/// Read-only view of one slab class, for inspection and tests.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
pub struct ClassView {
    /// Chunk size, bytes.
    pub chunk: u64,
    /// Slabs held by the class.
    pub slabs: u64,
    /// Live items.
    pub live: u64,
    /// Freed, reusable chunks.
    pub free_chunks: u64,
}

/// Per-class detail of one slab-granular eviction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
pub struct ClassEvict {
    /// Chunk size of the class, bytes.
    pub chunk: u64,
    /// Slabs the class held before.
    pub before: u64,
    /// Slabs evicted from the class.
    pub slabs: u64,
    /// Live items removed with them.
    pub items: u64,
    /// Bytes released (whole slabs).
    pub bytes: u64,
}

/// Aggregate result of a slab-granular eviction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvictOutcome {
    /// Total slabs evicted.
    pub slabs: u64,
    /// Total live items removed.
    pub items: u64,
    /// Total bytes released.
    pub bytes: u64,
    /// Per-class breakdown (affected classes only, ascending chunk size).
    pub classes: Vec<ClassEvict>,
}

/// What one insert did to the slab layout (the caller settles backend
/// allocation at batch granularity from these deltas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Slabs newly committed.
    pub new_slabs: u64,
    /// Slabs released (stolen from another class at capacity).
    pub freed_slabs: u64,
    /// Live items evicted to make room (capacity pressure).
    pub evicted_items: u64,
    /// Chunk bytes consumed by this item, 0 for a same-class overwrite.
    pub chunk_bytes: u64,
}

/// A key-granular, slab-class item store.
#[derive(Debug, Clone)]
pub struct KeyedSlabCache {
    slab_bytes: u64,
    max_bytes: u64,
    classes: Vec<SlabClass>,
    entries: Vec<Entry>,
    free_head: u32,
    shards: Vec<Shard>,
    total_slabs: u64,
    live: u64,
    /// Live items evicted over the store's lifetime (all causes).
    pub evicted_items: u64,
    /// Slabs evicted over the store's lifetime.
    pub evicted_slabs: u64,
    /// Live items evicted specifically by capacity pressure.
    pub capacity_evictions: u64,
}

impl KeyedSlabCache {
    /// Creates an empty store with 1 MiB slabs.
    ///
    /// # Panics
    ///
    /// Panics unless `max_bytes` holds at least one slab.
    pub fn new(max_bytes: u64) -> Self {
        Self::with_slab_bytes(max_bytes, 1 << 20)
    }

    /// Creates an empty store with the given power-of-two slab size.
    pub fn with_slab_bytes(max_bytes: u64, slab_bytes: u64) -> Self {
        assert!(
            slab_bytes.is_power_of_two() && slab_bytes >= MIN_CHUNK,
            "slab size must be a power of two holding at least one chunk"
        );
        assert!(max_bytes >= slab_bytes, "capacity must hold one slab");
        let mut classes = Vec::new();
        let mut chunk = MIN_CHUNK;
        while chunk <= slab_bytes {
            classes.push(SlabClass {
                chunk,
                per_slab: slab_bytes / chunk,
                slabs: 0,
                live: 0,
                free_chunks: 0,
                head: NONE,
                tail: NONE,
            });
            chunk *= 2;
        }
        KeyedSlabCache {
            slab_bytes,
            max_bytes,
            classes,
            entries: Vec::new(),
            free_head: NONE,
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            total_slabs: 0,
            live: 0,
            evicted_items: 0,
            evicted_slabs: 0,
            capacity_evictions: 0,
        }
    }

    /// The slab size, bytes.
    pub fn slab_bytes(&self) -> u64 {
        self.slab_bytes
    }

    /// The configured maximum resident bytes.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Slabs currently committed.
    pub fn slab_count(&self) -> u64 {
        self.total_slabs
    }

    /// Bytes currently resident (whole slabs).
    pub fn resident_bytes(&self) -> u64 {
        self.total_slabs * self.slab_bytes
    }

    /// Live items.
    pub fn live_items(&self) -> u64 {
        self.live
    }

    /// The slab class index for a value of `value_bytes`.
    #[inline]
    pub fn class_for(&self, value_bytes: u64) -> usize {
        let need = (value_bytes + ITEM_OVERHEAD)
            .next_power_of_two()
            .clamp(MIN_CHUNK, self.slab_bytes);
        (need.trailing_zeros() - MIN_CHUNK.trailing_zeros()) as usize
    }

    /// The chunk size an item of `value_bytes` occupies.
    #[inline]
    pub fn chunk_bytes_for(&self, value_bytes: u64) -> u64 {
        self.classes[self.class_for(value_bytes)].chunk
    }

    /// Per-class occupancy views (all classes, ascending chunk size).
    pub fn class_views(&self) -> Vec<ClassView> {
        self.classes
            .iter()
            .map(|c| ClassView {
                chunk: c.chunk,
                slabs: c.slabs,
                live: c.live,
                free_chunks: c.free_chunks,
            })
            .collect()
    }

    #[inline]
    fn shard_of(fp: u64) -> usize {
        (fp >> 58) as usize & (SHARDS - 1)
    }

    /// True if the key is resident (does not touch the LRU).
    pub fn contains(&self, fp: u64) -> bool {
        self.shards[Self::shard_of(fp)].get(fp).is_some()
    }

    /// Looks up a key; on a hit, moves it to the front of its class LRU.
    pub fn get(&mut self, fp: u64) -> bool {
        match self.shards[Self::shard_of(fp)].get(fp) {
            Some(idx) => {
                self.touch(idx);
                true
            }
            None => false,
        }
    }

    /// Removes a key. Its chunk returns to the class free list.
    pub fn delete(&mut self, fp: u64) -> bool {
        match self.shards[Self::shard_of(fp)].remove(fp) {
            Some(idx) => {
                let class = self.entries[idx as usize].class as usize;
                self.unlink(idx);
                self.release_entry(idx);
                self.classes[class].live -= 1;
                self.classes[class].free_chunks += 1;
                self.live -= 1;
                true
            }
            None => false,
        }
    }

    /// Inserts or overwrites a key. Chooses the slab class from
    /// `value_bytes`, growing the footprint one slab at a time; at the
    /// byte cap it first recycles the class's own LRU tail, then steals a
    /// slab from the most slab-heavy class.
    pub fn insert(&mut self, fp: u64, value_bytes: u64) -> InsertOutcome {
        let mut out = InsertOutcome::default();
        let class = self.class_for(value_bytes);
        if let Some(idx) = self.shards[Self::shard_of(fp)].get(fp) {
            let old = self.entries[idx as usize].class as usize;
            if old == class {
                // Same-class overwrite reuses the chunk in place.
                self.touch(idx);
                return out;
            }
            // The value moved across classes: free the old chunk first.
            self.shards[Self::shard_of(fp)].remove(fp);
            self.unlink(idx);
            self.release_entry(idx);
            self.classes[old].live -= 1;
            self.classes[old].free_chunks += 1;
            self.live -= 1;
        }

        // Acquire a chunk in the target class.
        if self.classes[class].free_chunks > 0 {
            self.classes[class].free_chunks -= 1;
        } else if self.classes[class].live + self.classes[class].free_chunks
            < self.classes[class].capacity()
        {
            // A virgin chunk in an already-committed slab.
        } else if (self.total_slabs + 1) * self.slab_bytes <= self.max_bytes {
            self.classes[class].slabs += 1;
            self.total_slabs += 1;
            out.new_slabs += 1;
        } else if self.classes[class].live > 0 {
            // At capacity: recycle this class's own LRU tail.
            let tail = self.classes[class].tail;
            let victim_fp = self.entries[tail as usize].fp;
            self.shards[Self::shard_of(victim_fp)].remove(victim_fp);
            self.unlink(tail);
            self.release_entry(tail);
            self.classes[class].live -= 1;
            self.live -= 1;
            self.evicted_items += 1;
            self.capacity_evictions += 1;
            out.evicted_items += 1;
        } else {
            // The class owns nothing: steal a slab from the largest class.
            let victim = self
                .classes
                .iter()
                .enumerate()
                .max_by_key(|(i, c)| (c.slabs, usize::MAX - i))
                .map(|(i, _)| i)
                .expect("classes exist");
            debug_assert!(self.classes[victim].slabs > 0, "cap holds >= 1 slab");
            let freed = self.evict_class_slabs(victim, 1);
            out.freed_slabs += freed.slabs;
            out.evicted_items += freed.items;
            self.classes[class].slabs += 1;
            self.total_slabs += 1;
            out.new_slabs += 1;
        }

        let idx = self.acquire_entry(fp, class as u8);
        self.shards[Self::shard_of(fp)].insert(fp, idx);
        self.push_front(class, idx);
        self.classes[class].live += 1;
        self.live += 1;
        out.chunk_bytes = self.classes[class].chunk;
        out
    }

    /// Plans an eviction of `n` slabs: apportions them across classes
    /// proportionally to their slab counts (largest-remainder rounding,
    /// deterministic tie-break on smaller chunk first). Pure — returns
    /// `(class index, slab quota)` pairs with positive quotas, ascending
    /// class index; each pair is one `evict_class` work packet.
    pub fn class_quotas(&self, n: u64) -> Vec<(usize, u64)> {
        let n = n.min(self.total_slabs);
        if n == 0 {
            return Vec::new();
        }
        let total = self.total_slabs;
        let mut quotas: Vec<u64> = Vec::with_capacity(self.classes.len());
        let mut rems: Vec<(u64, usize)> = Vec::with_capacity(self.classes.len());
        let mut assigned = 0;
        for (i, c) in self.classes.iter().enumerate() {
            let q = n * c.slabs / total;
            let r = n * c.slabs % total;
            quotas.push(q);
            assigned += q;
            rems.push((r, i));
        }
        rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, i) in rems.iter().take((n - assigned) as usize) {
            quotas[i] += 1;
        }
        quotas
            .into_iter()
            .enumerate()
            .filter(|&(_, q)| q > 0)
            .collect()
    }

    /// Evicts `n` slabs from one class (a planned quota from
    /// [`KeyedSlabCache::class_quotas`]): dead chunks evaporate first,
    /// then live items leave from the LRU tail.
    pub fn evict_class(&mut self, class: usize, n: u64) -> ClassEvict {
        self.evict_class_slabs(class, n)
    }

    /// Evicts `n` slabs, apportioned across classes per
    /// [`KeyedSlabCache::class_quotas`]. Returns the per-class detail.
    pub fn evict_slabs(&mut self, n: u64) -> EvictOutcome {
        let mut out = EvictOutcome::default();
        for (i, q) in self.class_quotas(n) {
            let detail = self.evict_class_slabs(i, q);
            out.slabs += detail.slabs;
            out.items += detail.items;
            out.bytes += detail.bytes;
            out.classes.push(detail);
        }
        out
    }

    /// Evicts the given fraction of committed slabs (Table 1 policy: 1 %
    /// on Low, 4 % on High). Rounds up; at least one slab when any exist
    /// and the fraction is positive. Non-positive (or NaN) fractions and
    /// an empty store evict nothing; fractions ≥ 1 evict everything.
    pub fn evict_fraction(&mut self, fraction: f64) -> EvictOutcome {
        if self.total_slabs == 0 || fraction.is_nan() || fraction <= 0.0 {
            return EvictOutcome::default();
        }
        let n = ((self.total_slabs as f64 * fraction).ceil() as u64).clamp(1, self.total_slabs);
        self.evict_slabs(n)
    }

    /// Evicts `n` slabs from class `class`: dead chunks (free or never
    /// used) evaporate first, then live items leave from the LRU tail.
    fn evict_class_slabs(&mut self, class: usize, n: u64) -> ClassEvict {
        let before = self.classes[class].slabs;
        let n = n.min(before);
        let cap_after = (before - n) * self.classes[class].per_slab;
        let mut items = 0;
        while self.classes[class].live > cap_after {
            let tail = self.classes[class].tail;
            debug_assert_ne!(tail, NONE);
            let fp = self.entries[tail as usize].fp;
            self.shards[Self::shard_of(fp)].remove(fp);
            self.unlink(tail);
            self.release_entry(tail);
            self.classes[class].live -= 1;
            self.live -= 1;
            items += 1;
        }
        // Freed chunks beyond the surviving slabs vanish with them.
        let c = &mut self.classes[class];
        c.free_chunks = c.free_chunks.min(cap_after - c.live);
        c.slabs -= n;
        self.total_slabs -= n;
        self.evicted_items += items;
        self.evicted_slabs += n;
        ClassEvict {
            chunk: self.classes[class].chunk,
            before,
            slabs: n,
            items,
            bytes: n * self.slab_bytes,
        }
    }

    /// Removes everything (shutdown). Returns the bytes released.
    pub fn clear(&mut self) -> u64 {
        let bytes = self.resident_bytes();
        for c in &mut self.classes {
            c.slabs = 0;
            c.live = 0;
            c.free_chunks = 0;
            c.head = NONE;
            c.tail = NONE;
        }
        self.entries.clear();
        self.free_head = NONE;
        self.shards = (0..SHARDS).map(|_| Shard::new()).collect();
        self.total_slabs = 0;
        self.live = 0;
        bytes
    }

    #[inline]
    fn acquire_entry(&mut self, fp: u64, class: u8) -> u32 {
        if self.free_head != NONE {
            let idx = self.free_head;
            self.free_head = self.entries[idx as usize].next;
            self.entries[idx as usize] = Entry {
                fp,
                prev: NONE,
                next: NONE,
                class,
            };
            idx
        } else {
            let idx = self.entries.len() as u32;
            self.entries.push(Entry {
                fp,
                prev: NONE,
                next: NONE,
                class,
            });
            idx
        }
    }

    #[inline]
    fn release_entry(&mut self, idx: u32) {
        let e = &mut self.entries[idx as usize];
        e.fp = 0;
        e.prev = NONE;
        e.next = self.free_head;
        self.free_head = idx;
    }

    /// Unlinks an entry from its class LRU list.
    #[inline]
    fn unlink(&mut self, idx: u32) {
        let Entry {
            prev, next, class, ..
        } = self.entries[idx as usize];
        let c = &mut self.classes[class as usize];
        if prev == NONE {
            c.head = next;
        } else {
            self.entries[prev as usize].next = next;
        }
        if next == NONE {
            self.classes[class as usize].tail = prev;
        } else {
            self.entries[next as usize].prev = prev;
        }
    }

    /// Links an entry at the front (MRU end) of a class LRU list.
    #[inline]
    fn push_front(&mut self, class: usize, idx: u32) {
        let head = self.classes[class].head;
        self.entries[idx as usize].prev = NONE;
        self.entries[idx as usize].next = head;
        if head != NONE {
            self.entries[head as usize].prev = idx;
        } else {
            self.classes[class].tail = idx;
        }
        self.classes[class].head = idx;
    }

    /// Moves an entry to the front of its class LRU.
    #[inline]
    fn touch(&mut self, idx: u32) {
        let class = self.entries[idx as usize].class as usize;
        if self.classes[class].head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(class, idx);
    }

    /// Debug invariant: per-class occupancy is consistent with the slab
    /// layout and the global counters.
    #[cfg(test)]
    fn check_invariants(&self) {
        let mut live = 0;
        let mut slabs = 0;
        for c in &self.classes {
            assert!(
                c.live + c.free_chunks <= c.capacity(),
                "class {} overcommitted",
                c.chunk
            );
            live += c.live;
            slabs += c.slabs;
        }
        assert_eq!(live, self.live);
        assert_eq!(slabs, self.total_slabs);
        assert!(self.resident_bytes() <= self.max_bytes.max(self.slab_bytes));
        let indexed: usize = self.shards.iter().map(|s| s.live).sum();
        assert_eq!(indexed as u64, self.live);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_sim::rng::SimRng;
    use m3_sim::units::{KIB, MIB};

    /// Mixes a counter into a well-spread fingerprint.
    fn fp(i: u64) -> u64 {
        let mut x = i.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    #[test]
    fn class_geometry() {
        let c = KeyedSlabCache::new(64 * MIB);
        assert_eq!(c.chunk_bytes_for(0), 64);
        assert_eq!(c.chunk_bytes_for(8), 64);
        assert_eq!(c.chunk_bytes_for(9), 128);
        assert_eq!(c.chunk_bytes_for(72), 128);
        assert_eq!(c.chunk_bytes_for(968), 1024, "968 + 56 overhead = 1 KiB");
        assert_eq!(c.chunk_bytes_for(1000), 2048, "overhead tips the class");
        assert_eq!(c.chunk_bytes_for(MIB), MIB);
        assert_eq!(c.chunk_bytes_for(8 * MIB), MIB, "oversize caps at slab");
        assert_eq!(c.class_views().len(), 15);
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let mut c = KeyedSlabCache::new(64 * MIB);
        for i in 0..1000 {
            let out = c.insert(fp(i), 100 + i);
            assert!(out.chunk_bytes > 0);
        }
        assert_eq!(c.live_items(), 1000);
        for i in 0..1000 {
            assert!(c.get(fp(i)), "key {i} resident");
        }
        assert!(!c.get(fp(5000)));
        for i in 0..500 {
            assert!(c.delete(fp(i)));
        }
        assert!(!c.delete(fp(0)), "double delete misses");
        assert_eq!(c.live_items(), 500);
        c.check_invariants();
    }

    #[test]
    fn overwrite_same_class_reuses_chunk() {
        let mut c = KeyedSlabCache::new(64 * MIB);
        let a = c.insert(fp(1), 100);
        assert_eq!(a.new_slabs, 1);
        let b = c.insert(fp(1), 101);
        assert_eq!(b, InsertOutcome::default(), "no allocation on overwrite");
        assert_eq!(c.live_items(), 1);
    }

    #[test]
    fn overwrite_across_classes_moves_the_item() {
        let mut c = KeyedSlabCache::new(64 * MIB);
        c.insert(fp(1), 100);
        let out = c.insert(fp(1), 10_000);
        assert_eq!(out.new_slabs, 1, "new class commits a slab");
        assert_eq!(c.live_items(), 1);
        let views = c.class_views();
        let small = views.iter().find(|v| v.chunk == 256).unwrap();
        assert_eq!(small.live, 0);
        assert_eq!(small.free_chunks, 1, "old chunk back on the free list");
        c.check_invariants();
    }

    #[test]
    fn deleted_chunks_are_reused_before_growth() {
        let mut c = KeyedSlabCache::new(64 * MIB);
        for i in 0..100 {
            c.insert(fp(i), 100);
        }
        let slabs = c.slab_count();
        for i in 0..50 {
            c.delete(fp(i));
        }
        for i in 1000..1050 {
            let out = c.insert(fp(i), 100);
            assert_eq!(out.new_slabs, 0, "free chunks absorb new items");
        }
        assert_eq!(c.slab_count(), slabs);
        c.check_invariants();
    }

    #[test]
    fn capacity_recycles_own_lru_tail() {
        // One slab of 4 KiB holds 16 × 256 B chunks.
        let mut c = KeyedSlabCache::with_slab_bytes(4 * KIB, 4 * KIB);
        for i in 0..16 {
            c.insert(fp(i), 150);
        }
        assert_eq!(c.slab_count(), 1);
        // Touch key 0 so key 1 is the LRU tail.
        assert!(c.get(fp(0)));
        let out = c.insert(fp(100), 150);
        assert_eq!(out.evicted_items, 1);
        assert_eq!(out.new_slabs, 0);
        assert!(c.contains(fp(0)), "recently used survives");
        assert!(!c.contains(fp(1)), "LRU tail evicted");
        assert_eq!(c.capacity_evictions, 1);
        c.check_invariants();
    }

    #[test]
    fn capacity_steals_a_slab_for_an_empty_class() {
        let mut c = KeyedSlabCache::with_slab_bytes(4 * KIB, 4 * KIB);
        for i in 0..16 {
            c.insert(fp(i), 150);
        }
        // A different class at full capacity: steal the 256 B class's slab.
        let out = c.insert(fp(100), 1000);
        assert_eq!(out.freed_slabs, 1);
        assert_eq!(out.new_slabs, 1);
        assert_eq!(out.evicted_items, 16, "stolen slab drops all residents");
        assert!(c.contains(fp(100)));
        assert_eq!(c.slab_count(), 1);
        c.check_invariants();
    }

    #[test]
    fn evict_slabs_apportions_by_class_weight() {
        let mut c = KeyedSlabCache::new(100 * MIB);
        // ~60 slabs of 1 KiB chunks, ~30 of 16 KiB ones.
        for i in 0..(60 * 1024) {
            c.insert(fp(i), 900);
        }
        for i in 100_000..(100_000 + 30 * 64) {
            c.insert(fp(i), 15_000);
        }
        let before = c.slab_count();
        let by_class: Vec<u64> = c.class_views().iter().map(|v| v.slabs).collect();
        let out = c.evict_slabs(9);
        assert_eq!(out.slabs, 9);
        assert_eq!(c.slab_count(), before - 9);
        assert_eq!(
            out.classes.iter().map(|d| d.slabs).sum::<u64>(),
            9,
            "per-class detail sums to the aggregate"
        );
        for d in &out.classes {
            let idx = c.class_for(d.chunk - ITEM_OVERHEAD - 1);
            assert!(d.slabs <= by_class[idx], "never more than the class held");
            assert_eq!(d.bytes, d.slabs * c.slab_bytes());
        }
        // Proportionality: the 2:1 class gets roughly 2:1 of the cut.
        assert!(out.classes[0].slabs > out.classes[1].slabs);
        c.check_invariants();
    }

    #[test]
    fn class_quotas_plan_matches_evict_slabs() {
        let mut c = KeyedSlabCache::new(100 * MIB);
        for i in 0..(60 * 1024) {
            c.insert(fp(i), 900);
        }
        for i in 100_000..(100_000 + 30 * 64) {
            c.insert(fp(i), 15_000);
        }
        let plan = c.class_quotas(9);
        assert_eq!(plan.iter().map(|&(_, q)| q).sum::<u64>(), 9);
        // Executing the plan class by class equals the monolithic eviction.
        let mut split = c.clone();
        let mono = c.evict_slabs(9);
        let mut got = EvictOutcome::default();
        for &(i, q) in &plan {
            let d = split.evict_class(i, q);
            got.slabs += d.slabs;
            got.items += d.items;
            got.bytes += d.bytes;
            got.classes.push(d);
        }
        assert_eq!(got, mono);
        assert_eq!(split.slab_count(), c.slab_count());
        assert_eq!(split.live_items(), c.live_items());
        assert!(c.class_quotas(0).is_empty());
    }

    #[test]
    fn evict_fraction_edge_cases() {
        let mut c = KeyedSlabCache::new(100 * MIB);
        assert_eq!(c.evict_fraction(0.04), EvictOutcome::default(), "empty");
        for i in 0..1024 {
            c.insert(fp(i), 900);
        }
        let slabs = c.slab_count();
        assert_eq!(c.evict_fraction(0.0).slabs, 0, "zero fraction is a no-op");
        assert_eq!(c.evict_fraction(-0.5).slabs, 0, "negative is a no-op");
        assert_eq!(c.evict_fraction(f64::NAN).slabs, 0, "NaN is a no-op");
        assert_eq!(c.slab_count(), slabs);
        assert_eq!(c.evict_fraction(0.01).slabs, 1, "rounds up to one slab");
        let rest = c.slab_count();
        assert_eq!(c.evict_fraction(2.0).slabs, rest, "≥1 evicts everything");
        assert_eq!(c.slab_count(), 0);
        assert_eq!(c.live_items(), 0);
    }

    #[test]
    fn evict_fraction_matches_table1_rounding() {
        let mut c = KeyedSlabCache::new(2048 * MIB);
        // 1000 slabs of 1 MiB chunks (one item each).
        for i in 0..1000 {
            c.insert(fp(i), 900_000);
        }
        assert_eq!(c.slab_count(), 1000);
        assert_eq!(c.evict_fraction(0.04).slabs, 40, "4% of 1000");
        assert_eq!(c.evict_fraction(0.01).slabs, 10, "1% of 960");
    }

    #[test]
    fn eviction_prefers_dead_chunks() {
        let mut c = KeyedSlabCache::new(100 * MIB);
        for i in 0..2048 {
            c.insert(fp(i), 900);
        }
        // Kill half the items: plenty of free chunks.
        for i in 0..1024 {
            c.delete(fp(i));
        }
        let live_before = c.live_items();
        let out = c.evict_slabs(1);
        assert_eq!(out.slabs, 1);
        assert_eq!(out.items, 0, "dead chunks evaporate before live items");
        assert_eq!(c.live_items(), live_before);
        c.check_invariants();
    }

    #[test]
    fn lru_order_drives_slab_eviction() {
        // 4 KiB slabs, 256 B chunks: 16 per slab, two slabs committed.
        let mut c = KeyedSlabCache::with_slab_bytes(64 * KIB, 4 * KIB);
        for i in 0..32 {
            c.insert(fp(i), 150);
        }
        // Refresh the first 16 keys so keys 16..32 hold the tail.
        for i in 0..16 {
            c.get(fp(i));
        }
        let out = c.evict_slabs(1);
        assert_eq!(out.items, 16);
        for i in 0..16 {
            assert!(c.contains(fp(i)), "refreshed keys survive");
        }
        for i in 16..32 {
            assert!(!c.contains(fp(i)), "stale keys evicted");
        }
        c.check_invariants();
    }

    #[test]
    fn clear_releases_everything() {
        let mut c = KeyedSlabCache::new(100 * MIB);
        for i in 0..5000 {
            c.insert(fp(i), 2000);
        }
        let resident = c.resident_bytes();
        assert!(resident > 0);
        assert_eq!(c.clear(), resident);
        assert_eq!(c.live_items(), 0);
        assert_eq!(c.slab_count(), 0);
        assert!(!c.contains(fp(1)));
        c.check_invariants();
    }

    #[test]
    fn random_op_soak_holds_invariants() {
        let mut rng = SimRng::new(0xC0FFEE);
        let mut c = KeyedSlabCache::with_slab_bytes(2 * MIB, 64 * KIB);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for step in 0..20_000 {
            let k = rng.gen_range(512);
            let key = fp(k);
            match rng.gen_range(10) {
                0..=5 => {
                    c.insert(key, rng.gen_range(40_000) + 1);
                    resident.insert(key);
                }
                6..=7 => {
                    let hit = c.get(key);
                    // Capacity pressure may have evicted it, but a hit
                    // implies we inserted it at some point.
                    if hit {
                        assert!(resident.contains(&key));
                    }
                }
                8 => {
                    if c.delete(key) {
                        resident.remove(&key);
                    }
                }
                _ => {
                    let n = rng.gen_range(3);
                    c.evict_slabs(n);
                }
            }
            if step % 1000 == 0 {
                c.check_invariants();
            }
        }
        c.check_invariants();
    }

    #[test]
    fn backward_shift_delete_keeps_probe_runs_intact() {
        // Force heavy collisions: fingerprints sharing low bits land in
        // long probe runs within one shard.
        let mut c = KeyedSlabCache::new(100 * MIB);
        let colliding: Vec<u64> = (0..200u64).map(|i| (i << 32) | 0xAB).collect();
        for &k in &colliding {
            c.insert(k, 100);
        }
        for &k in colliding.iter().step_by(2) {
            assert!(c.delete(k));
        }
        for (i, &k) in colliding.iter().enumerate() {
            assert_eq!(c.contains(k), i % 2 == 1, "probe run survives deletes");
        }
    }

    #[test]
    #[should_panic(expected = "capacity must hold one slab")]
    fn tiny_capacity_rejected() {
        KeyedSlabCache::new(1024);
    }
}
