//! Slab-allocated key-value cache substrates.
//!
//! The paper evaluates M3 with two memory caches: **Go-Cache**, a ~300-line
//! cache library the authors built on the Go runtime (imported by a
//! benchmark process, as industry caches like LevelDB and CacheLib are),
//! and **Memcached** v1.6.7, a native application whose `malloc` was
//! replaced with `jemalloc` so freed memory actually returns to the OS
//! (§4.1, §6).
//!
//! Both caches store fixed-size items in *slabs*: eviction happens a whole
//! slab at a time, because memory can only be returned to the OS at page
//! granularity and a slab is a contiguous page run (§4.1, "we evict an
//! entire slab of key-value pairs to ensure we have contiguous memory to
//! return to the OS"). The M3 policies (Table 1) evict 1 % of slabs on a
//! low signal and 4 % on a high signal, calling into the Go runtime's GC
//! where one exists.
//!
//! The workload model matches §7.1.1's Go-Cache benchmark: a key space of
//! 12 million keys preloaded to 85 %, then uniform-random gets; a miss
//! simulates a 1 ms backend lookup and inserts the value. Because accesses
//! are uniform, the hit ratio equals the resident fraction of the key
//! space, which lets the driver advance in deterministic batches instead of
//! simulating 6.5 million individual requests.
//!
//! Two richer substrates extend that analytic model to production-shaped
//! traffic (ROADMAP item 1): [`store`] is a key-granular slab-class store
//! (sharded fingerprint index, intrusive per-class LRU, slab-granular
//! eviction) and [`trace`] generates deterministic Zipf traces with tiered
//! value sizes, op mixes, negative lookups, and burst / diurnal /
//! hot-key-shift phase schedules. [`KvApp`] drives either engine through
//! the same tick, signal, and adaptive-allocation plumbing.

pub mod kv;
pub mod slab;
pub mod store;
pub mod trace;
pub mod workload;

pub use kv::{KvApp, KvBackend, KvStats};
pub use slab::SlabCache;
pub use store::{ClassEvict, ClassView, EvictOutcome, InsertOutcome, KeyedSlabCache};
pub use trace::{TraceGen, TraceOp, TraceOpKind, TraceWorkload, TrafficPattern, ZipfSampler};
pub use workload::KvWorkload;
