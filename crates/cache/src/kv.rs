//! The cache server process driver (Go-Cache and Memcached).
//!
//! One [`KvApp`] models a cache process: a preload phase filling the store
//! to the workload's preload fraction, then a measured phase of uniform
//! random gets where each miss pays a backend penalty and inserts the
//! value. The memory backend is either the Go runtime (Go-Cache) or a
//! native allocator (Memcached with `malloc` or `jemalloc`).
//!
//! Requests are advanced in deterministic batches: under uniform access the
//! hit ratio is exactly the resident fraction, so per-request sampling adds
//! nothing but noise (see [`crate::slab`]).

use m3_core::{
    AdaptiveAllocator, M3Participant, PacketKind, PacketOutcome, ReclaimScheduler, SchedulerConfig,
    SignalOutcome, ThresholdSignal,
};
use m3_os::{Kernel, Pid};
use m3_runtime::{GoConfig, GoRuntime, NativeAllocator};
use m3_sim::clock::{SimDuration, SimTime};
use m3_sim::trace::{EvictReason, TraceData};
use serde::{Deserialize, Serialize};

use crate::slab::SlabCache;
use crate::store::KeyedSlabCache;
use crate::trace::{TraceGen, TraceOpKind, TraceWorkload};
use crate::workload::KvWorkload;

/// `NUM_epochs` for cache stacks (§4.2: 5 for Go-Cache and Memcached).
pub const CACHE_NUM_EPOCHS: u32 = 5;

/// Bookkeeping cost of evicting one slab, microseconds.
const SLAB_EVICT_US: u64 = 50;

/// Largest request batch advanced at one hit ratio (keeps the ratio fresh).
const MAX_BATCH: u64 = 20_000;

/// Trace-mode ops applied before the allocation gate settles a batch.
const TRACE_BATCH: u64 = 4096;

/// Upper bound on trace-mode ops between periodic `cache.stats` snapshots.
/// Short traces snapshot every tenth of the run instead, so even a server
/// the OOM killer takes down early leaves progress counters in the trace.
const TRACE_STATS_EVERY: u64 = 1_000_000;

/// The periodic snapshot interval for a trace of `total_ops` requests.
fn trace_stats_every(total_ops: u64) -> u64 {
    (total_ops / 10).clamp(1, TRACE_STATS_EVERY)
}

/// The memory-management backend under the cache.
#[derive(Debug)]
pub enum KvBackend {
    /// Go-Cache: a library cache on the Go runtime.
    Go(GoRuntime),
    /// Memcached: native allocation (`malloc` or `jemalloc`).
    Native(NativeAllocator),
}

impl KvBackend {
    fn pid(&self) -> Pid {
        match self {
            KvBackend::Go(g) => g.pid(),
            KvBackend::Native(n) => n.pid(),
        }
    }

    /// Allocates `bytes` of item data; returns any GC pause incurred.
    fn alloc(&mut self, os: &mut Kernel, bytes: u64, now: SimTime) -> SimDuration {
        match self {
            KvBackend::Go(g) => g.alloc(os, bytes, now).pause,
            KvBackend::Native(n) => {
                n.alloc(os, bytes);
                SimDuration::ZERO
            }
        }
    }

    /// Frees `bytes` of item data (eviction).
    fn free(&mut self, os: &mut Kernel, bytes: u64) {
        match self {
            KvBackend::Go(g) => g.free_bytes(bytes),
            KvBackend::Native(n) => n.free(os, bytes),
        }
    }

    /// Periodic housekeeping (Go's background scavenger).
    fn housekeeping(&mut self, os: &mut Kernel, now: SimTime) {
        if let KvBackend::Go(g) = self {
            g.scavenge(os, now);
        }
    }

    fn shutdown(&mut self, os: &mut Kernel) {
        match self {
            KvBackend::Go(g) => g.shutdown(os),
            KvBackend::Native(n) => n.shutdown(os),
        }
    }
}

/// Cumulative cache-server statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct KvStats {
    /// Measured requests completed.
    pub requests_done: u64,
    /// Expected hits among them (deterministic batching).
    pub hits: u64,
    /// Expected misses.
    pub misses: u64,
    /// Inserts delayed by the adaptive protocol.
    pub delayed_puts: u64,
}

/// What one tick accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvTickOutcome {
    /// Simulated time consumed (≤ budget).
    pub consumed: SimDuration,
    /// True once the benchmark completed and all debt is paid.
    pub finished: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Preload,
    Serve,
    Done,
}

/// The key-granular engine driving a production-trace workload: the slab
/// store, the op stream, and its extra accounting.
#[derive(Debug)]
struct TraceEngine {
    store: KeyedSlabCache,
    gen: TraceGen,
    /// When the measured phase began.
    serve_started: Option<SimTime>,
    /// Next `requests_done` milestone for a periodic stats snapshot.
    next_stats_at: u64,
    /// Guards the one final `cache.stats` emission.
    final_stats_emitted: bool,
    /// Negative lookups observed.
    negative: u64,
    /// SETs applied.
    sets: u64,
    /// DELETEs applied.
    deletes: u64,
}

/// Slab-layout deltas accumulated over one trace batch; the backend and
/// the allocation gate are settled once per batch from these.
#[derive(Debug, Default, Clone, Copy)]
struct BatchFx {
    /// Chunk-consuming inserts (gate-relevant allocation attempts).
    attempts: u64,
    /// Chunk bytes those inserts consumed.
    chunk_bytes: u64,
    /// Slabs newly committed.
    new_slabs: u64,
    /// Slabs released (class steals).
    freed_slabs: u64,
}

/// Per-class eviction totals accumulated across one drain's `evict_class`
/// packets, consumed by the aggregate `evict_slabs` packet.
#[derive(Debug, Default, Clone, Copy)]
struct EvictAcc {
    slabs: u64,
    items: u64,
    bytes: u64,
}

/// A cache server process (Go-Cache or Memcached).
#[derive(Debug)]
pub struct KvApp {
    backend: KvBackend,
    slabs: SlabCache,
    wl: KvWorkload,
    engine: Option<Box<TraceEngine>>,
    allocator: Option<AdaptiveAllocator>,
    phase: Phase,
    preloaded: u64,
    debt: SimDuration,
    miss_carry: f64,
    finished: bool,
    /// Work-packet scheduler tunables for signal handling.
    sched: SchedulerConfig,
    /// Drain-scoped accumulator for the keyed eviction packets.
    evict_acc: EvictAcc,
    /// Statistics.
    pub stats: KvStats,
}

impl KvApp {
    /// Creates a cache app. `max_bytes` is the stock static cache size
    /// (ignored — unbounded — when `m3_mode` is set, matching the paper's
    /// modification).
    pub fn new(backend: KvBackend, wl: KvWorkload, max_bytes: u64, m3_mode: bool) -> Self {
        wl.validate();
        let cap = if m3_mode { u64::MAX / 2 } else { max_bytes };
        KvApp {
            slabs: SlabCache::new(wl.key_space, wl.item_bytes, wl.slab_bytes, cap),
            backend,
            wl,
            engine: None,
            allocator: m3_mode.then(|| AdaptiveAllocator::new(CACHE_NUM_EPOCHS)),
            phase: Phase::Preload,
            preloaded: 0,
            debt: SimDuration::ZERO,
            miss_carry: 0.0,
            finished: false,
            sched: SchedulerConfig::default(),
            evict_acc: EvictAcc::default(),
            stats: KvStats::default(),
        }
    }

    /// Overrides the work-packet scheduler configuration (worker count,
    /// bucket-order ablation).
    pub fn with_scheduler(mut self, sched: SchedulerConfig) -> Self {
        self.sched = sched;
        self
    }

    /// Creates a cache app driven by a production-shaped trace (Zipf
    /// popularity, tiered values, op mix) over the key-granular slab
    /// store. Shares the analytic path's tick, debt, signal, and
    /// adaptive-allocation plumbing; only the storage engine and the
    /// request stream differ.
    pub fn new_trace(
        backend: KvBackend,
        twl: TraceWorkload,
        max_bytes: u64,
        m3_mode: bool,
    ) -> Self {
        twl.validate();
        let cap = if m3_mode { u64::MAX / 2 } else { max_bytes };
        // The analytic store stays empty; its workload mirror keeps
        // `progress()` and inspection accessors meaningful.
        let wl = KvWorkload {
            key_space: twl.key_space,
            preload_fraction: twl.preload_fraction,
            total_requests: twl.total_ops,
            preload_bytes_per_sec: twl.preload_bytes_per_sec,
            ..KvWorkload::paper_memtier()
        };
        let mut app = KvApp::new(backend, wl, max_bytes, m3_mode);
        app.engine = Some(Box::new(TraceEngine {
            store: KeyedSlabCache::new(cap),
            gen: TraceGen::new(twl),
            serve_started: None,
            next_stats_at: trace_stats_every(twl.total_ops),
            final_stats_emitted: false,
            negative: 0,
            sets: 0,
            deletes: 0,
        }));
        app
    }

    /// Convenience constructor: a trace-driven Memcached on jemalloc —
    /// the paper's production cache configuration.
    pub fn trace_memcached(pid: Pid, twl: TraceWorkload, max_bytes: u64, m3_mode: bool) -> Self {
        KvApp::new_trace(
            KvBackend::Native(NativeAllocator::new(
                pid,
                m3_runtime::AllocatorKind::Jemalloc,
            )),
            twl,
            max_bytes,
            m3_mode,
        )
    }

    /// Convenience constructor: Go-Cache on a Go runtime.
    pub fn go_cache(
        pid: Pid,
        go_cfg: GoConfig,
        wl: KvWorkload,
        max_bytes: u64,
        m3_mode: bool,
    ) -> Self {
        KvApp::new(
            KvBackend::Go(GoRuntime::new(pid, go_cfg)),
            wl,
            max_bytes,
            m3_mode,
        )
    }

    /// Convenience constructor: Memcached on a native allocator.
    pub fn memcached(
        pid: Pid,
        kind: m3_runtime::AllocatorKind,
        wl: KvWorkload,
        max_bytes: u64,
        m3_mode: bool,
    ) -> Self {
        KvApp::new(
            KvBackend::Native(NativeAllocator::new(pid, kind)),
            wl,
            max_bytes,
            m3_mode,
        )
    }

    /// The analytic slab store (for hit-ratio and residency inspection).
    /// Empty when the app runs in trace mode — see [`KvApp::keyed`].
    pub fn slabs(&self) -> &SlabCache {
        &self.slabs
    }

    /// The key-granular store, when this app is trace-driven.
    pub fn keyed(&self) -> Option<&KeyedSlabCache> {
        self.engine.as_ref().map(|e| &e.store)
    }

    /// The trace workload, when this app is trace-driven.
    pub fn trace_workload(&self) -> Option<&TraceWorkload> {
        self.engine.as_ref().map(|e| e.gen.workload())
    }

    /// The workload description.
    pub fn workload(&self) -> &KvWorkload {
        &self.wl
    }

    /// The memory backend.
    pub fn backend(&self) -> &KvBackend {
        &self.backend
    }

    /// True once the benchmark is complete.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Fraction of the measured phase completed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        (self.stats.requests_done as f64 / self.wl.total_requests as f64).min(1.0)
    }

    /// Adds externally incurred time (signal handling) to the debt.
    pub fn add_debt(&mut self, d: SimDuration) {
        self.debt += d;
    }

    /// Runs the server for up to `budget` of simulated time.
    pub fn tick(&mut self, os: &mut Kernel, now: SimTime, budget: SimDuration) -> KvTickOutcome {
        if self.finished {
            return KvTickOutcome {
                consumed: SimDuration::ZERO,
                finished: true,
            };
        }
        self.backend.housekeeping(os, now);

        let mut remaining_us = budget.as_millis() * 1000;
        // Pay outstanding debt first.
        let debt_us = self.debt.as_millis() * 1000;
        let pay = debt_us.min(remaining_us);
        self.debt = SimDuration::from_millis((debt_us - pay) / 1000);
        remaining_us -= pay;

        while remaining_us > 0 && self.phase != Phase::Done {
            let spent = match (self.phase, self.engine.is_some()) {
                (Phase::Preload, false) => self.preload_step(os, now, remaining_us),
                (Phase::Serve, false) => self.serve_step(os, now, remaining_us),
                (Phase::Preload, true) => self.trace_preload_step(os, now, remaining_us),
                (Phase::Serve, true) => self.trace_serve_step(os, now, remaining_us),
                (Phase::Done, _) => 0,
            };
            if spent == 0 {
                break;
            }
            remaining_us = remaining_us.saturating_sub(spent);
        }

        if self.phase == Phase::Done && self.debt.is_zero() {
            self.finished = true;
            self.slabs.clear();
            if let Some(e) = self.engine.as_mut() {
                e.store.clear();
            }
            self.backend.shutdown(os);
        }
        KvTickOutcome {
            consumed: budget - SimDuration::from_millis(remaining_us / 1000),
            finished: self.finished,
        }
    }

    /// Advances the preload phase; returns microseconds spent.
    fn preload_step(&mut self, os: &mut Kernel, now: SimTime, budget_us: u64) -> u64 {
        let target = self.wl.preload_items();
        if self.preloaded >= target {
            self.phase = Phase::Serve;
            return 0;
        }
        let bytes_per_us = self.wl.preload_bytes_per_sec as f64 / 1e6;
        let max_items = ((budget_us as f64 * bytes_per_us) / self.wl.item_bytes as f64) as u64;
        let n = max_items.min(target - self.preloaded).clamp(1, MAX_BATCH);
        let pause = self.insert_items(os, now, n);
        self.debt += pause;
        self.preloaded += n;
        let spent = (n * self.wl.item_bytes) as f64 / bytes_per_us;
        (spent as u64).max(1)
    }

    /// Advances the measured phase; returns microseconds spent.
    fn serve_step(&mut self, os: &mut Kernel, now: SimTime, budget_us: u64) -> u64 {
        let left = self.wl.total_requests - self.stats.requests_done;
        if left == 0 {
            self.phase = Phase::Done;
            return 0;
        }
        let h = self.slabs.hit_ratio();
        let cost = self.wl.request_cost_us(h);
        let n = ((budget_us as f64 / cost) as u64).clamp(1, MAX_BATCH.min(left));
        let exact_misses = n as f64 * (1.0 - h) + self.miss_carry;
        let misses = (exact_misses.floor() as u64).min(n);
        self.miss_carry = exact_misses - misses as f64;

        let pause = self.insert_items(os, now, misses);
        self.debt += pause;

        self.stats.requests_done += n;
        self.stats.hits += n - misses;
        self.stats.misses += misses;
        ((n as f64 * cost) as u64).max(1)
    }

    /// Inserts `n` new items, applying the adaptive allocation protocol and
    /// stock capacity eviction. Returns GC pauses incurred.
    fn insert_items(&mut self, os: &mut Kernel, now: SimTime, n: u64) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        let mut pause = SimDuration::ZERO;
        let delayed = match self.allocator.as_mut() {
            Some(a) => {
                let snap = a.gate_snapshot(now);
                let delayed = a.delayed_of(n, now);
                if snap.rate < 1.0 {
                    os.record_trace_with(self.backend.pid(), || TraceData::AllocBatch {
                        n,
                        delayed,
                        rate: snap.rate,
                        elapsed_ms: snap.elapsed_ms,
                        epoch_ms: snap.epoch_ms,
                        num_epochs: snap.num_epochs,
                        curve: snap.curve.to_string(),
                    });
                }
                delayed
            }
            None => 0,
        };
        let allowed = n - delayed;

        if delayed > 0 {
            self.stats.delayed_puts += delayed;
            // Delayed puts first evict slabs covering their size, then
            // insert: resident memory does not grow.
            let slabs_before = self.slabs.slab_count();
            let slabs_needed = delayed.div_ceil(self.slabs.items_per_slab());
            let evicted_items = self.slabs.evict_slabs(slabs_needed);
            os.record_trace_with(self.backend.pid(), || TraceData::EvictSlabs {
                before: slabs_before,
                evicted: slabs_before - self.slabs.slab_count(),
                items: evicted_items,
                bytes: self.slabs.items_to_bytes(evicted_items),
                reason: EvictReason::AdmissionDelay,
            });
            self.backend
                .free(os, self.slabs.items_to_bytes(evicted_items));
            pause += SimDuration::from_millis(slabs_needed * SLAB_EVICT_US / 1000);
            pause += self
                .backend
                .alloc(os, self.slabs.items_to_bytes(delayed), now);
            self.slabs.insert(delayed);
        }
        if allowed > 0 {
            let evicted = self.slabs.insert(allowed);
            if evicted > 0 {
                self.backend.free(os, self.slabs.items_to_bytes(evicted));
            }
            pause += self
                .backend
                .alloc(os, self.slabs.items_to_bytes(allowed), now);
        }
        pause
    }

    /// Preloads the hottest ranks into the key-granular store, rate-limited
    /// by the workload's fill bandwidth. Returns microseconds spent.
    fn trace_preload_step(&mut self, os: &mut Kernel, now: SimTime, budget_us: u64) -> u64 {
        let e = self.engine.as_mut().expect("trace engine");
        let twl = *e.gen.workload();
        let target = twl.preload_items();
        if self.preloaded >= target {
            self.phase = Phase::Serve;
            return 0;
        }
        let budget_bytes = (budget_us * twl.preload_bytes_per_sec / 1_000_000).max(1);
        let mut fx = BatchFx::default();
        let mut loaded = 0;
        while self.preloaded + loaded < target
            && fx.chunk_bytes < budget_bytes
            && loaded < MAX_BATCH
        {
            let fp = twl.fp_of(self.preloaded + loaded);
            let out = e.store.insert(fp, twl.value_bytes(fp));
            if out.chunk_bytes > 0 {
                fx.attempts += 1;
                fx.chunk_bytes += out.chunk_bytes;
            }
            fx.new_slabs += out.new_slabs;
            fx.freed_slabs += out.freed_slabs;
            loaded += 1;
        }
        self.preloaded += loaded;
        let spent = fx.chunk_bytes * 1_000_000 / twl.preload_bytes_per_sec;
        let pause = self.trace_settle(os, now, fx);
        self.debt += pause;
        spent.max(1)
    }

    /// Applies one batch of trace ops against the key-granular store,
    /// then settles the allocation gate and the backend once for the
    /// whole batch. Returns microseconds spent.
    fn trace_serve_step(&mut self, os: &mut Kernel, now: SimTime, budget_us: u64) -> u64 {
        if self.engine.as_ref().expect("trace engine").gen.exhausted() {
            if !self
                .engine
                .as_ref()
                .expect("trace engine")
                .final_stats_emitted
            {
                self.emit_cache_stats(os, now);
                self.engine
                    .as_mut()
                    .expect("trace engine")
                    .final_stats_emitted = true;
            }
            self.phase = Phase::Done;
            return 0;
        }
        let e = self.engine.as_mut().expect("trace engine");
        if e.serve_started.is_none() {
            e.serve_started = Some(now);
        }
        let twl = *e.gen.workload();
        let budget_ns = budget_us.saturating_mul(1000);
        let mut spent_ns = 0u64;
        let mut fx = BatchFx::default();
        let mut ops = 0;
        let mut stats_due = false;
        while spent_ns < budget_ns && ops < TRACE_BATCH {
            let Some(op) = e.gen.next() else { break };
            ops += 1;
            let base_us = match op.kind {
                TraceOpKind::Get { negative } => {
                    if e.store.get(op.fp) {
                        self.stats.hits += 1;
                        twl.hit_us
                    } else {
                        self.stats.misses += 1;
                        if negative {
                            e.negative += 1;
                        } else {
                            // A real key misses once, then fills.
                            let out = e.store.insert(op.fp, twl.value_bytes(op.fp));
                            if out.chunk_bytes > 0 {
                                fx.attempts += 1;
                                fx.chunk_bytes += out.chunk_bytes;
                            }
                            fx.new_slabs += out.new_slabs;
                            fx.freed_slabs += out.freed_slabs;
                        }
                        twl.hit_us + twl.miss_extra_us
                    }
                }
                TraceOpKind::Set => {
                    e.sets += 1;
                    let out = e.store.insert(op.fp, twl.value_bytes(op.fp));
                    if out.chunk_bytes > 0 {
                        fx.attempts += 1;
                        fx.chunk_bytes += out.chunk_bytes;
                    }
                    fx.new_slabs += out.new_slabs;
                    fx.freed_slabs += out.freed_slabs;
                    twl.set_us
                }
                TraceOpKind::Delete => {
                    e.deletes += 1;
                    e.store.delete(op.fp);
                    twl.delete_us
                }
            };
            self.stats.requests_done += 1;
            let (num, den) = op.pace;
            spent_ns += base_us * 1000 * num as u64 / den as u64;
            if self.stats.requests_done >= e.next_stats_at {
                e.next_stats_at += trace_stats_every(twl.total_ops);
                stats_due = true;
            }
        }
        let pause = self.trace_settle(os, now, fx);
        self.debt += pause;
        if stats_due {
            self.emit_cache_stats(os, now);
        }
        (spent_ns / 1000).max(1)
    }

    /// Settles one trace batch: runs the adaptive allocation gate over the
    /// batch's chunk-consuming inserts (one `alloc.batch` event, exactly
    /// like the analytic path), claws back slabs covering the delayed
    /// share, and applies the net slab delta to the memory backend.
    fn trace_settle(&mut self, os: &mut Kernel, now: SimTime, mut fx: BatchFx) -> SimDuration {
        let pid = self.backend.pid();
        let mut pause = SimDuration::ZERO;
        if fx.attempts > 0 {
            if let Some(a) = self.allocator.as_mut() {
                let snap = a.gate_snapshot(now);
                let delayed = a.delayed_of(fx.attempts, now);
                if snap.rate < 1.0 {
                    os.record_trace_with(pid, || TraceData::AllocBatch {
                        n: fx.attempts,
                        delayed,
                        rate: snap.rate,
                        elapsed_ms: snap.elapsed_ms,
                        epoch_ms: snap.epoch_ms,
                        num_epochs: snap.num_epochs,
                        curve: snap.curve.to_string(),
                    });
                }
                if delayed > 0 {
                    self.stats.delayed_puts += delayed;
                    // Delayed puts must not grow resident memory: evict
                    // slabs covering their share of the batch's bytes.
                    let e = self.engine.as_mut().expect("trace engine");
                    let delayed_bytes = fx.chunk_bytes * delayed / fx.attempts;
                    let slabs_needed = delayed_bytes.div_ceil(e.store.slab_bytes()).max(1);
                    let before = e.store.slab_count();
                    let out = e.store.evict_slabs(slabs_needed);
                    if out.slabs > 0 {
                        os.record_trace_with(pid, || TraceData::EvictSlabs {
                            before,
                            evicted: out.slabs,
                            items: out.items,
                            bytes: out.bytes,
                            reason: EvictReason::AdmissionDelay,
                        });
                        fx.freed_slabs += out.slabs;
                        pause += SimDuration::from_millis(out.slabs * SLAB_EVICT_US / 1000);
                    }
                }
            }
        }
        let slab_bytes = self
            .engine
            .as_ref()
            .expect("trace engine")
            .store
            .slab_bytes();
        if fx.freed_slabs > 0 {
            self.backend.free(os, fx.freed_slabs * slab_bytes);
        }
        if fx.new_slabs > 0 {
            pause += self.backend.alloc(os, fx.new_slabs * slab_bytes, now);
        }
        pause
    }

    /// Memcached/jemalloc returns freed slabs to the OS inside `free`;
    /// report that RSS delta as the eviction packet's returned bytes.
    fn jemalloc_returned(&self, bytes: u64) -> u64 {
        match &self.backend {
            KvBackend::Native(n) if n.kind() == m3_runtime::AllocatorKind::Jemalloc => bytes,
            _ => 0,
        }
    }

    /// Emits a cumulative `cache.stats` snapshot for the trace engine.
    fn emit_cache_stats(&mut self, os: &mut Kernel, now: SimTime) {
        let pid = self.backend.pid();
        let stats = self.stats;
        let e = self.engine.as_ref().expect("trace engine");
        let serve_ms = e.serve_started.map(|s| (now - s).as_millis()).unwrap_or(0);
        os.record_trace_with(pid, || TraceData::CacheStats {
            requests: stats.requests_done,
            hits: stats.hits,
            misses: stats.misses,
            negative: e.negative,
            sets: e.sets,
            deletes: e.deletes,
            delayed: stats.delayed_puts,
            capacity_items: e.store.capacity_evictions,
            resident_bytes: e.store.resident_bytes(),
            live_items: e.store.live_items(),
            serve_ms,
        });
    }
}

impl M3Participant for KvApp {
    fn pid(&self) -> Pid {
        self.backend.pid()
    }

    /// Table 1, cache rows — low signal: light eviction (1 % of slabs) +
    /// call Go (where present); high signal: heavy eviction (4 %) + call
    /// Go, then run the adaptive allocation protocol.
    fn handle_signal(
        &mut self,
        sig: ThresholdSignal,
        os: &mut Kernel,
        now: SimTime,
    ) -> SignalOutcome {
        if self.finished {
            return SignalOutcome::default();
        }
        let fraction = match sig {
            ThresholdSignal::Low => 0.01,
            ThresholdSignal::High => 0.04,
        };
        if sig == ThresholdSignal::High {
            if let Some(a) = self.allocator.as_mut() {
                a.on_high_signal(now);
            }
        }
        let pid = self.backend.pid();
        let reason = match sig {
            ThresholdSignal::Low => EvictReason::LowSignal,
            ThresholdSignal::High => EvictReason::HighSignal,
        };
        let mut sched = ReclaimScheduler::new(pid, self.sched);
        self.evict_acc = EvictAcc::default();

        // Prepare: the cache's own slab eviction. The key-granular path
        // plans per-class quotas now (nothing runs between enqueue and
        // drain), enqueues one packet per affected class, and an aggregate
        // packet that settles the backend free; the analytic path is a
        // single aggregate packet.
        let evict = match self.engine.as_ref() {
            Some(e) => {
                let total = e.store.slab_count();
                let n = if total == 0 {
                    0
                } else {
                    ((total as f64 * fraction).ceil() as u64).clamp(1, total)
                };
                let plan = e.store.class_quotas(n);
                let mut class_ids = Vec::with_capacity(plan.len());
                for (class, quota) in plan {
                    class_ids.push(sched.add_costed(
                        PacketKind::EvictClass,
                        &[],
                        move |app: &KvApp| {
                            quota
                                * app
                                    .engine
                                    .as_ref()
                                    .expect("trace engine")
                                    .store
                                    .slab_bytes()
                        },
                        move |app: &mut KvApp, os: &mut Kernel| {
                            let e = app.engine.as_mut().expect("trace engine");
                            let d = e.store.evict_class(class, quota);
                            os.record_trace_with(pid, || TraceData::EvictClass {
                                chunk: d.chunk,
                                before: d.before,
                                evicted: d.slabs,
                                items: d.items,
                                bytes: d.bytes,
                                reason,
                            });
                            app.evict_acc.slabs += d.slabs;
                            app.evict_acc.items += d.items;
                            app.evict_acc.bytes += d.bytes;
                            PacketOutcome::freed(d.bytes, SimDuration::ZERO)
                        },
                    ));
                }
                sched.add_costed(
                    PacketKind::EvictSlabs,
                    &class_ids,
                    |_: &KvApp| 0, // the class packets carry the planned bytes
                    move |app: &mut KvApp, os: &mut Kernel| {
                        let acc = std::mem::take(&mut app.evict_acc);
                        os.record_trace_with(pid, || TraceData::EvictSlabs {
                            before: total,
                            evicted: acc.slabs,
                            items: acc.items,
                            bytes: acc.bytes,
                            reason,
                        });
                        app.backend.free(os, acc.bytes);
                        PacketOutcome {
                            bytes: acc.bytes,
                            returned: app.jemalloc_returned(acc.bytes),
                            duration: SimDuration::from_millis(acc.slabs * SLAB_EVICT_US / 1000),
                        }
                    },
                )
            }
            None => sched.add_costed(
                PacketKind::EvictSlabs,
                &[],
                move |app: &KvApp| (app.slabs.resident_bytes() as f64 * fraction) as u64,
                move |app: &mut KvApp, os: &mut Kernel| {
                    let before = app.slabs.slab_count();
                    let (slabs, items) = app.slabs.evict_fraction(fraction);
                    let bytes = app.slabs.items_to_bytes(items);
                    os.record_trace_with(pid, || TraceData::EvictSlabs {
                        before,
                        evicted: slabs,
                        items,
                        bytes,
                        reason,
                    });
                    app.backend.free(os, bytes);
                    PacketOutcome {
                        bytes,
                        returned: app.jemalloc_returned(bytes),
                        duration: SimDuration::from_millis(slabs * SLAB_EVICT_US / 1000),
                    }
                },
            ),
        };

        // Collect + Release: only the Go runtime has a GC below the cache
        // (Table 1: "call Go"). Memcached's jemalloc already returned the
        // freed slabs inside the eviction packet's `free`.
        if matches!(self.backend, KvBackend::Go(_)) {
            let gc = sched.add_costed(
                PacketKind::GcGo,
                &[evict],
                |app: &KvApp| match &app.backend {
                    KvBackend::Go(g) => g.collect_estimate(),
                    KvBackend::Native(_) => 0,
                },
                move |app: &mut KvApp, os: &mut Kernel| match &mut app.backend {
                    KvBackend::Go(g) => {
                        let out = g.collect(os);
                        if !g.config().return_immediately {
                            // Stock Go leaves free spans to the background
                            // scavenger; start its clock.
                            g.note_idle_free(now);
                        }
                        PacketOutcome::freed(out.reclaimed, out.pause)
                    }
                    KvBackend::Native(_) => PacketOutcome::default(),
                },
            );
            let immediate = match &self.backend {
                KvBackend::Go(g) => g.config().return_immediately,
                KvBackend::Native(_) => false,
            };
            if immediate {
                sched.add_costed(
                    PacketKind::Madvise,
                    &[gc],
                    |app: &KvApp| match &app.backend {
                        KvBackend::Go(g) => g.releasable(),
                        KvBackend::Native(_) => 0,
                    },
                    |app: &mut KvApp, os: &mut Kernel| match &mut app.backend {
                        KvBackend::Go(g) => PacketOutcome::released(g.release_to_os(os)),
                        KvBackend::Native(_) => PacketOutcome::default(),
                    },
                );
            }
        }

        let res = sched.drain(self, os);
        if sig == ThresholdSignal::High {
            if let Some(a) = self.allocator.as_mut() {
                a.on_reclaim_done(now + res.outcome.duration);
            }
        }
        res.outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_os::KernelConfig;
    use m3_runtime::AllocatorKind;
    use m3_sim::units::GIB;

    fn small_workload() -> KvWorkload {
        KvWorkload {
            key_space: 100_000,
            preload_fraction: 0.85,
            total_requests: 200_000,
            ..KvWorkload::paper_gocache()
        }
    }

    fn setup_go(m3: bool, max: u64) -> (Kernel, KvApp) {
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("go-cache");
        let cfg = if m3 {
            GoConfig::m3(100)
        } else {
            GoConfig::stock(100)
        };
        (os, KvApp::go_cache(pid, cfg, small_workload(), max, m3))
    }

    fn run(os: &mut Kernel, app: &mut KvApp) -> SimTime {
        let mut now = SimTime::ZERO;
        let tick = SimDuration::from_millis(100);
        for _ in 0..10_000_000 {
            let out = app.tick(os, now, tick);
            now += tick;
            if out.finished {
                return now;
            }
        }
        panic!("benchmark did not finish");
    }

    #[test]
    fn benchmark_completes_and_releases() {
        let (mut os, mut app) = setup_go(false, 64 * GIB);
        let pid = app.pid();
        run(&mut os, &mut app);
        assert_eq!(app.stats.requests_done, 200_000);
        assert_eq!(os.rss(pid), 0, "shutdown releases everything");
    }

    #[test]
    fn preload_reaches_target_before_serving() {
        let (mut os, mut app) = setup_go(false, 64 * GIB);
        let mut now = SimTime::ZERO;
        let tick = SimDuration::from_millis(100);
        while app.phase == Phase::Preload {
            app.tick(&mut os, now, tick);
            now += tick;
        }
        assert_eq!(app.slabs().resident_items(), app.workload().preload_items());
    }

    #[test]
    fn bigger_cache_is_faster() {
        // Cache elasticity: a small static cache misses more and pays the
        // backend penalty more often.
        let (mut os_small, mut small) = setup_go(false, app_bytes(0.3));
        let t_small = run(&mut os_small, &mut small);
        let (mut os_big, mut big) = setup_go(false, app_bytes(2.0));
        let t_big = run(&mut os_big, &mut big);
        assert!(
            t_small > t_big,
            "small cache {} must be slower than big cache {}",
            t_small,
            t_big
        );
        assert!(small.stats.misses > big.stats.misses);
    }

    fn app_bytes(frac_of_keyspace: f64) -> u64 {
        let wl = small_workload();
        (wl.full_bytes() as f64 * frac_of_keyspace) as u64
    }

    #[test]
    fn hit_ratio_tracks_residency() {
        let (mut os, mut app) = setup_go(true, 0);
        run(&mut os, &mut app);
        // With an unbounded cache and no signals, every miss fills a key:
        // the store converges toward the full key space.
        assert!(app.stats.hits > app.stats.misses);
    }

    #[test]
    fn low_signal_evicts_one_percent() {
        // Use a small commit chunk so the few evicted slabs exceed the
        // runtime's retained slack and actually reach the OS.
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("go-cache");
        let cfg = GoConfig {
            commit_chunk: m3_sim::units::MIB,
            ..GoConfig::m3(100)
        };
        let mut app = KvApp::go_cache(pid, cfg, small_workload(), 0, true);
        let mut now = SimTime::ZERO;
        while app.phase == Phase::Preload {
            app.tick(&mut os, now, SimDuration::from_millis(100));
            now += SimDuration::from_millis(100);
        }
        let slabs_before = app.slabs().slab_count();
        let out = app.handle_signal(ThresholdSignal::Low, &mut os, now);
        let expect = ((slabs_before as f64) * 0.01).ceil() as u64;
        assert_eq!(app.slabs().slab_count(), slabs_before - expect);
        assert!(out.returned_to_os > 0, "Go GC must return evicted slabs");
    }

    #[test]
    fn high_signal_evicts_four_percent_and_throttles() {
        let (mut os, mut app) = setup_go(true, 0);
        let mut now = SimTime::ZERO;
        while app.phase == Phase::Preload {
            app.tick(&mut os, now, SimDuration::from_millis(100));
            now += SimDuration::from_millis(100);
        }
        let slabs_before = app.slabs().slab_count();
        app.handle_signal(ThresholdSignal::High, &mut os, now);
        let expect = ((slabs_before as f64) * 0.04).ceil() as u64;
        assert_eq!(app.slabs().slab_count(), slabs_before - expect);
        // Serve while time is frozen: the allow rate is 0, all puts delayed.
        let before = app.stats.delayed_puts;
        for _ in 0..50 {
            app.tick(&mut os, now, SimDuration::from_millis(100));
        }
        assert!(app.stats.delayed_puts > before);
    }

    #[test]
    fn memcached_jemalloc_returns_on_eviction() {
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("memcached");
        let mut app = KvApp::memcached(pid, AllocatorKind::Jemalloc, small_workload(), 0, true);
        let mut now = SimTime::ZERO;
        while app.phase == Phase::Preload {
            app.tick(&mut os, now, SimDuration::from_millis(100));
            now += SimDuration::from_millis(100);
        }
        let rss_before = os.rss(pid);
        let out = app.handle_signal(ThresholdSignal::High, &mut os, now);
        assert!(out.returned_to_os > 0);
        assert!(os.rss(pid) < rss_before);
    }

    #[test]
    fn memcached_malloc_holds_freed_memory() {
        // The reason the paper swapped in jemalloc.
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("memcached");
        let mut app = KvApp::memcached(pid, AllocatorKind::Malloc, small_workload(), 0, true);
        let mut now = SimTime::ZERO;
        while app.phase == Phase::Preload {
            app.tick(&mut os, now, SimDuration::from_millis(100));
            now += SimDuration::from_millis(100);
        }
        let rss_before = os.rss(pid);
        let out = app.handle_signal(ThresholdSignal::High, &mut os, now);
        assert_eq!(out.returned_to_os, 0);
        assert_eq!(
            os.rss(pid),
            rss_before,
            "malloc keeps evicted slabs resident"
        );
    }

    #[test]
    fn progress_tracks_measured_phase() {
        let (mut os, mut app) = setup_go(false, 64 * GIB);
        assert_eq!(app.progress(), 0.0);
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            if app
                .tick(&mut os, now, SimDuration::from_millis(500))
                .finished
            {
                break;
            }
            now += SimDuration::from_millis(500);
        }
        assert!(app.progress() > 0.0);
        run(&mut os, &mut app);
        assert_eq!(app.progress(), 1.0);
    }

    #[test]
    fn miss_accounting_is_exact() {
        let (mut os, mut app) = setup_go(false, 64 * GIB);
        run(&mut os, &mut app);
        assert_eq!(
            app.stats.hits + app.stats.misses,
            app.stats.requests_done,
            "hits and misses must partition the requests"
        );
        // Preload covers 85%; the remaining keys fill on first miss, so the
        // total misses are bounded by uncovered keys plus the steady-state
        // expectation — loosely, fewer than half the requests.
        assert!(app.stats.misses < app.stats.requests_done / 2);
    }

    #[test]
    fn stock_capacity_is_respected() {
        let (mut os, mut app) = setup_go(false, app_bytes(0.3));
        run(&mut os, &mut app);
        assert!(
            app.slabs().resident_bytes() <= app.slabs().max_bytes() + app.workload().slab_bytes,
            "stock cache must stay at its static size"
        );
        assert!(app.slabs().evicted_slabs > 0);
    }

    #[test]
    fn signals_after_finish_are_noops() {
        let (mut os, mut app) = setup_go(true, 0);
        run(&mut os, &mut app);
        let out = app.handle_signal(ThresholdSignal::High, &mut os, SimTime::from_secs(99999));
        assert_eq!(out, SignalOutcome::default());
    }

    use crate::trace::{TraceWorkload, TrafficPattern};

    fn small_trace() -> TraceWorkload {
        TraceWorkload {
            key_space: 20_000,
            total_ops: 120_000,
            phase_ops: 30_000,
            ..TraceWorkload::smoke(TrafficPattern::Steady)
        }
    }

    fn setup_trace(m3: bool, max: u64) -> (Kernel, KvApp) {
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("memcached-trace");
        (os, KvApp::trace_memcached(pid, small_trace(), max, m3))
    }

    #[test]
    fn trace_benchmark_completes_and_releases() {
        let (mut os, mut app) = setup_trace(true, 0);
        let pid = app.pid();
        run(&mut os, &mut app);
        assert_eq!(app.stats.requests_done, 120_000);
        assert!(app.stats.hits > 0 && app.stats.misses > 0);
        assert_eq!(os.rss(pid), 0, "shutdown releases everything");
    }

    #[test]
    fn trace_preload_fills_the_hottest_ranks() {
        let (mut os, mut app) = setup_trace(true, 0);
        let mut now = SimTime::ZERO;
        while app.phase == Phase::Preload {
            app.tick(&mut os, now, SimDuration::from_millis(100));
            now += SimDuration::from_millis(100);
        }
        let twl = *app.trace_workload().unwrap();
        let store = app.keyed().unwrap();
        assert_eq!(store.live_items(), twl.preload_items());
        for key in 0..100 {
            assert!(store.contains(twl.fp_of(key)), "hot key {key} preloaded");
        }
    }

    #[test]
    fn trace_signal_emits_class_detail_summing_to_aggregate() {
        let (mut os, mut app) = setup_trace(true, 0);
        let mut now = SimTime::ZERO;
        while app.phase == Phase::Preload {
            app.tick(&mut os, now, SimDuration::from_millis(100));
            now += SimDuration::from_millis(100);
        }
        let before = app.keyed().unwrap().slab_count();
        app.handle_signal(ThresholdSignal::High, &mut os, now);
        let agg = os
            .trace
            .of_kind("evict.slabs")
            .filter_map(|ev| match ev.data {
                TraceData::EvictSlabs {
                    before,
                    evicted,
                    items,
                    bytes,
                    reason: EvictReason::HighSignal,
                } => Some((before, evicted, items, bytes)),
                _ => None,
            })
            .last()
            .expect("high-signal eviction recorded");
        assert_eq!(agg.0, before);
        assert_eq!(agg.1, ((before as f64) * 0.04).ceil() as u64, "Table 1: 4%");
        let (mut slabs, mut items, mut bytes, mut classes) = (0, 0, 0, 0);
        for ev in os.trace.of_kind("evict.class") {
            if let TraceData::EvictClass {
                evicted,
                items: i,
                bytes: b,
                reason: EvictReason::HighSignal,
                ..
            } = ev.data
            {
                classes += 1;
                slabs += evicted;
                items += i;
                bytes += b;
            }
        }
        assert!(classes > 1, "eviction spans multiple slab classes");
        assert_eq!(slabs, agg.1, "class slabs sum to the aggregate");
        assert_eq!(items, agg.2, "class items sum to the aggregate");
        assert_eq!(bytes, agg.3, "class bytes sum to the aggregate");
    }

    #[test]
    fn trace_high_signal_throttles_inserts() {
        let (mut os, mut app) = setup_trace(true, 0);
        let mut now = SimTime::ZERO;
        while app.phase == Phase::Preload {
            app.tick(&mut os, now, SimDuration::from_millis(100));
            now += SimDuration::from_millis(100);
        }
        app.handle_signal(ThresholdSignal::High, &mut os, now);
        // Serve while time is frozen: the allow rate is 0, all chunk
        // allocations delayed and clawed back.
        let before = app.stats.delayed_puts;
        for _ in 0..50 {
            app.tick(&mut os, now, SimDuration::from_millis(100));
        }
        assert!(app.stats.delayed_puts > before);
        assert!(os.trace.count("alloc.batch") > 0, "gate events recorded");
    }

    #[test]
    fn trace_emits_final_cache_stats() {
        let (mut os, mut app) = setup_trace(false, 64 * GIB);
        run(&mut os, &mut app);
        let last = os
            .trace
            .of_kind("cache.stats")
            .last()
            .expect("final stats snapshot");
        match &last.data {
            &TraceData::CacheStats {
                requests,
                hits,
                misses,
                negative,
                sets,
                deletes,
                ..
            } => {
                assert_eq!(requests, 120_000);
                assert_eq!(hits + misses + sets + deletes, requests);
                assert!(negative > 0, "negative lookups observed");
                let get_share = (hits + misses) as f64 / requests as f64;
                assert!((get_share - 0.90).abs() < 0.01, "GET share {get_share}");
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn trace_static_limit_caps_residency() {
        let cap = 64 * m3_sim::units::MIB;
        let (mut os, mut app) = setup_trace(false, cap);
        let pid = app.pid();
        let mut now = SimTime::ZERO;
        let tick = SimDuration::from_millis(100);
        let mut peak = 0;
        for _ in 0..10_000_000 {
            let out = app.tick(&mut os, now, tick);
            now += tick;
            peak = peak.max(os.rss(pid));
            if out.finished {
                break;
            }
        }
        assert!(app.finished(), "run completes under a static cap");
        assert!(
            peak <= cap + 8 * m3_sim::units::MIB,
            "peak rss {peak} must respect the static limit"
        );
        assert!(
            app.keyed().unwrap().capacity_evictions > 0,
            "capacity pressure forces LRU recycling"
        );
    }

    #[test]
    fn trace_run_is_deterministic() {
        let run_once = || {
            let (mut os, mut app) = setup_trace(true, 0);
            run(&mut os, &mut app);
            (
                app.stats.requests_done,
                app.stats.hits,
                app.stats.misses,
                app.stats.delayed_puts,
                os.trace.len(),
            )
        };
        assert_eq!(run_once(), run_once());
    }
}
