//! The cache server process driver (Go-Cache and Memcached).
//!
//! One [`KvApp`] models a cache process: a preload phase filling the store
//! to the workload's preload fraction, then a measured phase of uniform
//! random gets where each miss pays a backend penalty and inserts the
//! value. The memory backend is either the Go runtime (Go-Cache) or a
//! native allocator (Memcached with `malloc` or `jemalloc`).
//!
//! Requests are advanced in deterministic batches: under uniform access the
//! hit ratio is exactly the resident fraction, so per-request sampling adds
//! nothing but noise (see [`crate::slab`]).

use m3_core::{AdaptiveAllocator, M3Participant, SignalOutcome, ThresholdSignal};
use m3_os::{Kernel, Pid};
use m3_runtime::{GoConfig, GoRuntime, NativeAllocator};
use m3_sim::clock::{SimDuration, SimTime};
use m3_sim::trace::{EvictReason, TraceData};
use serde::{Deserialize, Serialize};

use crate::slab::SlabCache;
use crate::workload::KvWorkload;

/// `NUM_epochs` for cache stacks (§4.2: 5 for Go-Cache and Memcached).
pub const CACHE_NUM_EPOCHS: u32 = 5;

/// Bookkeeping cost of evicting one slab, microseconds.
const SLAB_EVICT_US: u64 = 50;

/// Largest request batch advanced at one hit ratio (keeps the ratio fresh).
const MAX_BATCH: u64 = 20_000;

/// The memory-management backend under the cache.
#[derive(Debug)]
pub enum KvBackend {
    /// Go-Cache: a library cache on the Go runtime.
    Go(GoRuntime),
    /// Memcached: native allocation (`malloc` or `jemalloc`).
    Native(NativeAllocator),
}

impl KvBackend {
    fn pid(&self) -> Pid {
        match self {
            KvBackend::Go(g) => g.pid(),
            KvBackend::Native(n) => n.pid(),
        }
    }

    /// Allocates `bytes` of item data; returns any GC pause incurred.
    fn alloc(&mut self, os: &mut Kernel, bytes: u64, now: SimTime) -> SimDuration {
        match self {
            KvBackend::Go(g) => g.alloc(os, bytes, now).pause,
            KvBackend::Native(n) => {
                n.alloc(os, bytes);
                SimDuration::ZERO
            }
        }
    }

    /// Frees `bytes` of item data (eviction).
    fn free(&mut self, os: &mut Kernel, bytes: u64) {
        match self {
            KvBackend::Go(g) => g.free_bytes(bytes),
            KvBackend::Native(n) => n.free(os, bytes),
        }
    }

    /// Runs the runtime GC if one exists (Table 1: "call Go").
    fn gc(&mut self, os: &mut Kernel, now: SimTime) -> (SimDuration, u64) {
        match self {
            KvBackend::Go(g) => {
                let out = g.gc(os, now);
                (out.pause, out.returned_to_os)
            }
            // Memcached has no runtime below it; jemalloc already returned
            // freed slabs inside `free`.
            KvBackend::Native(_) => (SimDuration::ZERO, 0),
        }
    }

    /// Periodic housekeeping (Go's background scavenger).
    fn housekeeping(&mut self, os: &mut Kernel, now: SimTime) {
        if let KvBackend::Go(g) = self {
            g.scavenge(os, now);
        }
    }

    fn shutdown(&mut self, os: &mut Kernel) {
        match self {
            KvBackend::Go(g) => g.shutdown(os),
            KvBackend::Native(n) => n.shutdown(os),
        }
    }
}

/// Cumulative cache-server statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct KvStats {
    /// Measured requests completed.
    pub requests_done: u64,
    /// Expected hits among them (deterministic batching).
    pub hits: u64,
    /// Expected misses.
    pub misses: u64,
    /// Inserts delayed by the adaptive protocol.
    pub delayed_puts: u64,
}

/// What one tick accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvTickOutcome {
    /// Simulated time consumed (≤ budget).
    pub consumed: SimDuration,
    /// True once the benchmark completed and all debt is paid.
    pub finished: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Preload,
    Serve,
    Done,
}

/// A cache server process (Go-Cache or Memcached).
#[derive(Debug)]
pub struct KvApp {
    backend: KvBackend,
    slabs: SlabCache,
    wl: KvWorkload,
    allocator: Option<AdaptiveAllocator>,
    phase: Phase,
    preloaded: u64,
    debt: SimDuration,
    miss_carry: f64,
    finished: bool,
    /// Statistics.
    pub stats: KvStats,
}

impl KvApp {
    /// Creates a cache app. `max_bytes` is the stock static cache size
    /// (ignored — unbounded — when `m3_mode` is set, matching the paper's
    /// modification).
    pub fn new(backend: KvBackend, wl: KvWorkload, max_bytes: u64, m3_mode: bool) -> Self {
        wl.validate();
        let cap = if m3_mode { u64::MAX / 2 } else { max_bytes };
        KvApp {
            slabs: SlabCache::new(wl.key_space, wl.item_bytes, wl.slab_bytes, cap),
            backend,
            wl,
            allocator: m3_mode.then(|| AdaptiveAllocator::new(CACHE_NUM_EPOCHS)),
            phase: Phase::Preload,
            preloaded: 0,
            debt: SimDuration::ZERO,
            miss_carry: 0.0,
            finished: false,
            stats: KvStats::default(),
        }
    }

    /// Convenience constructor: Go-Cache on a Go runtime.
    pub fn go_cache(
        pid: Pid,
        go_cfg: GoConfig,
        wl: KvWorkload,
        max_bytes: u64,
        m3_mode: bool,
    ) -> Self {
        KvApp::new(
            KvBackend::Go(GoRuntime::new(pid, go_cfg)),
            wl,
            max_bytes,
            m3_mode,
        )
    }

    /// Convenience constructor: Memcached on a native allocator.
    pub fn memcached(
        pid: Pid,
        kind: m3_runtime::AllocatorKind,
        wl: KvWorkload,
        max_bytes: u64,
        m3_mode: bool,
    ) -> Self {
        KvApp::new(
            KvBackend::Native(NativeAllocator::new(pid, kind)),
            wl,
            max_bytes,
            m3_mode,
        )
    }

    /// The slab store (for hit-ratio and residency inspection).
    pub fn slabs(&self) -> &SlabCache {
        &self.slabs
    }

    /// The workload description.
    pub fn workload(&self) -> &KvWorkload {
        &self.wl
    }

    /// The memory backend.
    pub fn backend(&self) -> &KvBackend {
        &self.backend
    }

    /// True once the benchmark is complete.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Fraction of the measured phase completed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        (self.stats.requests_done as f64 / self.wl.total_requests as f64).min(1.0)
    }

    /// Adds externally incurred time (signal handling) to the debt.
    pub fn add_debt(&mut self, d: SimDuration) {
        self.debt += d;
    }

    /// Runs the server for up to `budget` of simulated time.
    pub fn tick(&mut self, os: &mut Kernel, now: SimTime, budget: SimDuration) -> KvTickOutcome {
        if self.finished {
            return KvTickOutcome {
                consumed: SimDuration::ZERO,
                finished: true,
            };
        }
        self.backend.housekeeping(os, now);

        let mut remaining_us = budget.as_millis() * 1000;
        // Pay outstanding debt first.
        let debt_us = self.debt.as_millis() * 1000;
        let pay = debt_us.min(remaining_us);
        self.debt = SimDuration::from_millis((debt_us - pay) / 1000);
        remaining_us -= pay;

        while remaining_us > 0 && self.phase != Phase::Done {
            let spent = match self.phase {
                Phase::Preload => self.preload_step(os, now, remaining_us),
                Phase::Serve => self.serve_step(os, now, remaining_us),
                Phase::Done => 0,
            };
            if spent == 0 {
                break;
            }
            remaining_us = remaining_us.saturating_sub(spent);
        }

        if self.phase == Phase::Done && self.debt.is_zero() {
            self.finished = true;
            self.slabs.clear();
            self.backend.shutdown(os);
        }
        KvTickOutcome {
            consumed: budget - SimDuration::from_millis(remaining_us / 1000),
            finished: self.finished,
        }
    }

    /// Advances the preload phase; returns microseconds spent.
    fn preload_step(&mut self, os: &mut Kernel, now: SimTime, budget_us: u64) -> u64 {
        let target = self.wl.preload_items();
        if self.preloaded >= target {
            self.phase = Phase::Serve;
            return 0;
        }
        let bytes_per_us = self.wl.preload_bytes_per_sec as f64 / 1e6;
        let max_items = ((budget_us as f64 * bytes_per_us) / self.wl.item_bytes as f64) as u64;
        let n = max_items.min(target - self.preloaded).clamp(1, MAX_BATCH);
        let pause = self.insert_items(os, now, n);
        self.debt += pause;
        self.preloaded += n;
        let spent = (n * self.wl.item_bytes) as f64 / bytes_per_us;
        (spent as u64).max(1)
    }

    /// Advances the measured phase; returns microseconds spent.
    fn serve_step(&mut self, os: &mut Kernel, now: SimTime, budget_us: u64) -> u64 {
        let left = self.wl.total_requests - self.stats.requests_done;
        if left == 0 {
            self.phase = Phase::Done;
            return 0;
        }
        let h = self.slabs.hit_ratio();
        let cost = self.wl.request_cost_us(h);
        let n = ((budget_us as f64 / cost) as u64).clamp(1, MAX_BATCH.min(left));
        let exact_misses = n as f64 * (1.0 - h) + self.miss_carry;
        let misses = (exact_misses.floor() as u64).min(n);
        self.miss_carry = exact_misses - misses as f64;

        let pause = self.insert_items(os, now, misses);
        self.debt += pause;

        self.stats.requests_done += n;
        self.stats.hits += n - misses;
        self.stats.misses += misses;
        ((n as f64 * cost) as u64).max(1)
    }

    /// Inserts `n` new items, applying the adaptive allocation protocol and
    /// stock capacity eviction. Returns GC pauses incurred.
    fn insert_items(&mut self, os: &mut Kernel, now: SimTime, n: u64) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        let mut pause = SimDuration::ZERO;
        let delayed = match self.allocator.as_mut() {
            Some(a) => {
                let snap = a.gate_snapshot(now);
                let delayed = a.delayed_of(n, now);
                if snap.rate < 1.0 {
                    os.record_trace_with(self.backend.pid(), || TraceData::AllocBatch {
                        n,
                        delayed,
                        rate: snap.rate,
                        elapsed_ms: snap.elapsed_ms,
                        epoch_ms: snap.epoch_ms,
                        num_epochs: snap.num_epochs,
                        curve: snap.curve.to_string(),
                    });
                }
                delayed
            }
            None => 0,
        };
        let allowed = n - delayed;

        if delayed > 0 {
            self.stats.delayed_puts += delayed;
            // Delayed puts first evict slabs covering their size, then
            // insert: resident memory does not grow.
            let slabs_before = self.slabs.slab_count();
            let slabs_needed = delayed.div_ceil(self.slabs.items_per_slab());
            let evicted_items = self.slabs.evict_slabs(slabs_needed);
            os.record_trace_with(self.backend.pid(), || TraceData::EvictSlabs {
                before: slabs_before,
                evicted: slabs_before - self.slabs.slab_count(),
                items: evicted_items,
                bytes: self.slabs.items_to_bytes(evicted_items),
                reason: EvictReason::AdmissionDelay,
            });
            self.backend
                .free(os, self.slabs.items_to_bytes(evicted_items));
            pause += SimDuration::from_millis(slabs_needed * SLAB_EVICT_US / 1000);
            pause += self
                .backend
                .alloc(os, self.slabs.items_to_bytes(delayed), now);
            self.slabs.insert(delayed);
        }
        if allowed > 0 {
            let evicted = self.slabs.insert(allowed);
            if evicted > 0 {
                self.backend.free(os, self.slabs.items_to_bytes(evicted));
            }
            pause += self
                .backend
                .alloc(os, self.slabs.items_to_bytes(allowed), now);
        }
        pause
    }
}

impl M3Participant for KvApp {
    fn pid(&self) -> Pid {
        self.backend.pid()
    }

    /// Table 1, cache rows — low signal: light eviction (1 % of slabs) +
    /// call Go (where present); high signal: heavy eviction (4 %) + call
    /// Go, then run the adaptive allocation protocol.
    fn handle_signal(
        &mut self,
        sig: ThresholdSignal,
        os: &mut Kernel,
        now: SimTime,
    ) -> SignalOutcome {
        if self.finished {
            return SignalOutcome::default();
        }
        let fraction = match sig {
            ThresholdSignal::Low => 0.01,
            ThresholdSignal::High => 0.04,
        };
        if sig == ThresholdSignal::High {
            if let Some(a) = self.allocator.as_mut() {
                a.on_high_signal(now);
            }
        }
        let slabs_before = self.slabs.slab_count();
        let (slabs, items) = self.slabs.evict_fraction(fraction);
        os.record_trace_with(self.backend.pid(), || TraceData::EvictSlabs {
            before: slabs_before,
            evicted: slabs,
            items,
            bytes: self.slabs.items_to_bytes(items),
            reason: match sig {
                ThresholdSignal::Low => EvictReason::LowSignal,
                ThresholdSignal::High => EvictReason::HighSignal,
            },
        });
        self.backend.free(os, self.slabs.items_to_bytes(items));
        let evict_cost = SimDuration::from_millis(slabs * SLAB_EVICT_US / 1000);
        let (gc_pause, returned) = self.backend.gc(os, now);
        let duration = evict_cost + gc_pause;
        if sig == ThresholdSignal::High {
            if let Some(a) = self.allocator.as_mut() {
                a.on_reclaim_done(now + duration);
            }
        }
        // Memcached/jemalloc returns freed slabs inside `free`; report the
        // RSS delta as returned bytes in that case.
        let returned = if returned == 0 {
            match &self.backend {
                KvBackend::Native(n) if n.kind() == m3_runtime::AllocatorKind::Jemalloc => {
                    self.slabs.items_to_bytes(items)
                }
                _ => returned,
            }
        } else {
            returned
        };
        SignalOutcome {
            duration,
            returned_to_os: returned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_os::KernelConfig;
    use m3_runtime::AllocatorKind;
    use m3_sim::units::GIB;

    fn small_workload() -> KvWorkload {
        KvWorkload {
            key_space: 100_000,
            preload_fraction: 0.85,
            total_requests: 200_000,
            ..KvWorkload::paper_gocache()
        }
    }

    fn setup_go(m3: bool, max: u64) -> (Kernel, KvApp) {
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("go-cache");
        let cfg = if m3 {
            GoConfig::m3(100)
        } else {
            GoConfig::stock(100)
        };
        (os, KvApp::go_cache(pid, cfg, small_workload(), max, m3))
    }

    fn run(os: &mut Kernel, app: &mut KvApp) -> SimTime {
        let mut now = SimTime::ZERO;
        let tick = SimDuration::from_millis(100);
        for _ in 0..10_000_000 {
            let out = app.tick(os, now, tick);
            now += tick;
            if out.finished {
                return now;
            }
        }
        panic!("benchmark did not finish");
    }

    #[test]
    fn benchmark_completes_and_releases() {
        let (mut os, mut app) = setup_go(false, 64 * GIB);
        let pid = app.pid();
        run(&mut os, &mut app);
        assert_eq!(app.stats.requests_done, 200_000);
        assert_eq!(os.rss(pid), 0, "shutdown releases everything");
    }

    #[test]
    fn preload_reaches_target_before_serving() {
        let (mut os, mut app) = setup_go(false, 64 * GIB);
        let mut now = SimTime::ZERO;
        let tick = SimDuration::from_millis(100);
        while app.phase == Phase::Preload {
            app.tick(&mut os, now, tick);
            now += tick;
        }
        assert_eq!(app.slabs().resident_items(), app.workload().preload_items());
    }

    #[test]
    fn bigger_cache_is_faster() {
        // Cache elasticity: a small static cache misses more and pays the
        // backend penalty more often.
        let (mut os_small, mut small) = setup_go(false, app_bytes(0.3));
        let t_small = run(&mut os_small, &mut small);
        let (mut os_big, mut big) = setup_go(false, app_bytes(2.0));
        let t_big = run(&mut os_big, &mut big);
        assert!(
            t_small > t_big,
            "small cache {} must be slower than big cache {}",
            t_small,
            t_big
        );
        assert!(small.stats.misses > big.stats.misses);
    }

    fn app_bytes(frac_of_keyspace: f64) -> u64 {
        let wl = small_workload();
        (wl.full_bytes() as f64 * frac_of_keyspace) as u64
    }

    #[test]
    fn hit_ratio_tracks_residency() {
        let (mut os, mut app) = setup_go(true, 0);
        run(&mut os, &mut app);
        // With an unbounded cache and no signals, every miss fills a key:
        // the store converges toward the full key space.
        assert!(app.stats.hits > app.stats.misses);
    }

    #[test]
    fn low_signal_evicts_one_percent() {
        // Use a small commit chunk so the few evicted slabs exceed the
        // runtime's retained slack and actually reach the OS.
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("go-cache");
        let cfg = GoConfig {
            commit_chunk: m3_sim::units::MIB,
            ..GoConfig::m3(100)
        };
        let mut app = KvApp::go_cache(pid, cfg, small_workload(), 0, true);
        let mut now = SimTime::ZERO;
        while app.phase == Phase::Preload {
            app.tick(&mut os, now, SimDuration::from_millis(100));
            now += SimDuration::from_millis(100);
        }
        let slabs_before = app.slabs().slab_count();
        let out = app.handle_signal(ThresholdSignal::Low, &mut os, now);
        let expect = ((slabs_before as f64) * 0.01).ceil() as u64;
        assert_eq!(app.slabs().slab_count(), slabs_before - expect);
        assert!(out.returned_to_os > 0, "Go GC must return evicted slabs");
    }

    #[test]
    fn high_signal_evicts_four_percent_and_throttles() {
        let (mut os, mut app) = setup_go(true, 0);
        let mut now = SimTime::ZERO;
        while app.phase == Phase::Preload {
            app.tick(&mut os, now, SimDuration::from_millis(100));
            now += SimDuration::from_millis(100);
        }
        let slabs_before = app.slabs().slab_count();
        app.handle_signal(ThresholdSignal::High, &mut os, now);
        let expect = ((slabs_before as f64) * 0.04).ceil() as u64;
        assert_eq!(app.slabs().slab_count(), slabs_before - expect);
        // Serve while time is frozen: the allow rate is 0, all puts delayed.
        let before = app.stats.delayed_puts;
        for _ in 0..50 {
            app.tick(&mut os, now, SimDuration::from_millis(100));
        }
        assert!(app.stats.delayed_puts > before);
    }

    #[test]
    fn memcached_jemalloc_returns_on_eviction() {
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("memcached");
        let mut app = KvApp::memcached(pid, AllocatorKind::Jemalloc, small_workload(), 0, true);
        let mut now = SimTime::ZERO;
        while app.phase == Phase::Preload {
            app.tick(&mut os, now, SimDuration::from_millis(100));
            now += SimDuration::from_millis(100);
        }
        let rss_before = os.rss(pid);
        let out = app.handle_signal(ThresholdSignal::High, &mut os, now);
        assert!(out.returned_to_os > 0);
        assert!(os.rss(pid) < rss_before);
    }

    #[test]
    fn memcached_malloc_holds_freed_memory() {
        // The reason the paper swapped in jemalloc.
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("memcached");
        let mut app = KvApp::memcached(pid, AllocatorKind::Malloc, small_workload(), 0, true);
        let mut now = SimTime::ZERO;
        while app.phase == Phase::Preload {
            app.tick(&mut os, now, SimDuration::from_millis(100));
            now += SimDuration::from_millis(100);
        }
        let rss_before = os.rss(pid);
        let out = app.handle_signal(ThresholdSignal::High, &mut os, now);
        assert_eq!(out.returned_to_os, 0);
        assert_eq!(
            os.rss(pid),
            rss_before,
            "malloc keeps evicted slabs resident"
        );
    }

    #[test]
    fn progress_tracks_measured_phase() {
        let (mut os, mut app) = setup_go(false, 64 * GIB);
        assert_eq!(app.progress(), 0.0);
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            if app
                .tick(&mut os, now, SimDuration::from_millis(500))
                .finished
            {
                break;
            }
            now += SimDuration::from_millis(500);
        }
        assert!(app.progress() > 0.0);
        run(&mut os, &mut app);
        assert_eq!(app.progress(), 1.0);
    }

    #[test]
    fn miss_accounting_is_exact() {
        let (mut os, mut app) = setup_go(false, 64 * GIB);
        run(&mut os, &mut app);
        assert_eq!(
            app.stats.hits + app.stats.misses,
            app.stats.requests_done,
            "hits and misses must partition the requests"
        );
        // Preload covers 85%; the remaining keys fill on first miss, so the
        // total misses are bounded by uncovered keys plus the steady-state
        // expectation — loosely, fewer than half the requests.
        assert!(app.stats.misses < app.stats.requests_done / 2);
    }

    #[test]
    fn stock_capacity_is_respected() {
        let (mut os, mut app) = setup_go(false, app_bytes(0.3));
        run(&mut os, &mut app);
        assert!(
            app.slabs().resident_bytes() <= app.slabs().max_bytes() + app.workload().slab_bytes,
            "stock cache must stay at its static size"
        );
        assert!(app.slabs().evicted_slabs > 0);
    }

    #[test]
    fn signals_after_finish_are_noops() {
        let (mut os, mut app) = setup_go(true, 0);
        run(&mut os, &mut app);
        let out = app.handle_signal(ThresholdSignal::High, &mut os, SimTime::from_secs(99999));
        assert_eq!(out, SignalOutcome::default());
    }
}
