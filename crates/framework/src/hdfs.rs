//! HDFS-like input storage model.
//!
//! The paper stores job input on an HDFS cluster (v2.8.5) co-located with
//! the Spark workers, one 7,200 RPM disk per node. For the reproduction,
//! input is a set of fixed-size blocks whose reads are charged to the
//! shared [`m3_os::DiskModel`].

use m3_os::DiskModel;
use m3_sim::clock::SimDuration;
use serde::{Deserialize, Serialize};

/// A partitioned input dataset resident on the simulated disk.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HdfsInput {
    /// Total dataset bytes on this node.
    pub bytes: u64,
    /// Partition (block) size.
    pub block_size: u64,
}

impl HdfsInput {
    /// Creates a dataset description.
    ///
    /// # Panics
    ///
    /// Panics if the block size is zero.
    pub fn new(bytes: u64, block_size: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        HdfsInput { bytes, block_size }
    }

    /// Number of blocks (rounding up; the tail block is short).
    pub fn num_blocks(&self) -> u32 {
        self.bytes.div_ceil(self.block_size) as u32
    }

    /// Size of the given block (the last block may be a remainder).
    pub fn block_bytes(&self, index: u32) -> u64 {
        let full = self.bytes / self.block_size;
        if u64::from(index) < full {
            self.block_size
        } else if u64::from(index) == full {
            self.bytes % self.block_size
        } else {
            0
        }
    }

    /// Time to read one block from disk with the given reader contention.
    pub fn read_block(&self, disk: &DiskModel, index: u32, readers: usize) -> SimDuration {
        disk.read_time(self.block_bytes(index), readers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_sim::units::{GIB, MIB};

    #[test]
    fn block_count_rounds_up() {
        let h = HdfsInput::new(GIB + MIB, 128 * MIB);
        assert_eq!(h.num_blocks(), 9);
        assert_eq!(h.block_bytes(0), 128 * MIB);
        assert_eq!(h.block_bytes(8), MIB);
        assert_eq!(h.block_bytes(9), 0);
    }

    #[test]
    fn exact_multiple_has_no_tail() {
        let h = HdfsInput::new(GIB, 128 * MIB);
        assert_eq!(h.num_blocks(), 8);
        assert_eq!(h.block_bytes(7), 128 * MIB);
        assert_eq!(h.block_bytes(8), 0);
    }

    #[test]
    fn read_cost_proportional_to_block() {
        let h = HdfsInput::new(GIB + MIB, 128 * MIB);
        let d = DiskModel::hdd_7200rpm();
        assert!(h.read_block(&d, 0, 1) > h.read_block(&d, 8, 1));
    }
}
