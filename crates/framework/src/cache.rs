//! Spark's in-memory block cache (the "block manager" storage region).
//!
//! An LRU set of block ids with a byte capacity. On a capacity miss, stock
//! Spark evicts existing blocks until the new block fits. Under M3 the
//! capacity is effectively unbounded and eviction happens only in response
//! to signals or delayed allocations.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found the block resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Blocks evicted (for any reason).
    pub evicted: u64,
    /// High-water mark of cached bytes.
    pub peak_bytes: u64,
}

/// An LRU block cache.
///
/// Blocks are identified by a dense `u32` id (the input partition index).
/// LRU order is maintained with a monotone use-stamp per block; eviction
/// scans for the minimum, which is fine at the O(hundreds) block counts of
/// a 64-GB node (a 12-GiB working set is ~100 × 128 MiB blocks).
#[derive(Debug, Clone)]
pub struct BlockCache {
    capacity: u64,
    used: u64,
    stamp: u64,
    /// block id → (bytes, last-use stamp)
    blocks: HashMap<u32, (u64, u64)>,
    /// Statistics.
    pub stats: CacheStats,
}

impl BlockCache {
    /// Creates a cache with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        BlockCache {
            capacity,
            used: 0,
            stamp: 0,
            blocks: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Replaces the capacity (used when a tuned configuration resizes the
    /// storage region).
    pub fn set_capacity(&mut self, capacity: u64) {
        self.capacity = capacity;
    }

    /// Bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Looks a block up, updating LRU order and hit/miss statistics.
    pub fn access(&mut self, id: u32) -> bool {
        self.stamp += 1;
        match self.blocks.get_mut(&id) {
            Some(e) => {
                e.1 = self.stamp;
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// True if the block is resident (no LRU/stat side effects).
    pub fn contains(&self, id: u32) -> bool {
        self.blocks.contains_key(&id)
    }

    /// Bytes that must be evicted before a block of `bytes` fits.
    pub fn needed_for(&self, bytes: u64) -> u64 {
        (self.used + bytes).saturating_sub(self.capacity)
    }

    /// Inserts a block, assuming capacity has been made available.
    ///
    /// # Panics
    ///
    /// Panics if the block would exceed capacity (callers must evict first —
    /// the eviction *cost* is theirs to account) or is already resident.
    pub fn insert(&mut self, id: u32, bytes: u64) {
        assert!(self.used + bytes <= self.capacity, "evict before inserting");
        assert!(!self.blocks.contains_key(&id), "block {id} already cached");
        self.stamp += 1;
        self.blocks.insert(id, (bytes, self.stamp));
        self.used += bytes;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.used);
    }

    /// Evicts the least-recently-used block, returning `(id, bytes)`.
    pub fn evict_lru(&mut self) -> Option<(u32, u64)> {
        let (&id, _) = self
            .blocks
            .iter()
            .min_by_key(|(&id, &(_, stamp))| (stamp, id))?;
        let (bytes, _) = self.blocks.remove(&id).expect("id just found");
        self.used -= bytes;
        self.stats.evicted += 1;
        Some((id, bytes))
    }

    /// Evicts LRU blocks until at least `bytes` have been freed (or the
    /// cache is empty). Returns the bytes actually freed.
    pub fn evict_bytes(&mut self, bytes: u64) -> u64 {
        let mut freed = 0;
        while freed < bytes {
            match self.evict_lru() {
                Some((_, b)) => freed += b,
                None => break,
            }
        }
        freed
    }

    /// Evicts the given fraction of resident blocks (LRU first), the M3
    /// high-signal policy (⅛ for Spark). Returns the bytes freed.
    pub fn evict_fraction(&mut self, fraction: f64) -> u64 {
        let count = ((self.blocks.len() as f64 * fraction).ceil() as usize).min(self.blocks.len());
        let mut freed = 0;
        for _ in 0..count {
            if let Some((_, b)) = self.evict_lru() {
                freed += b;
            }
        }
        freed
    }

    /// Removes every block (job teardown).
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.used = 0;
    }

    /// The hit ratio so far, or `None` before any access.
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.stats.hits + self.stats.misses;
        if total == 0 {
            None
        } else {
            Some(self.stats.hits as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_sim::units::MIB;

    const B: u64 = 128 * MIB;

    fn full_cache(n: u32) -> BlockCache {
        let mut c = BlockCache::new(u64::from(n) * B);
        for i in 0..n {
            c.insert(i, B);
        }
        c
    }

    #[test]
    fn hits_and_misses_tracked() {
        let mut c = BlockCache::new(4 * B);
        assert!(!c.access(0));
        c.insert(0, B);
        assert!(c.access(0));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.hit_ratio(), Some(0.5));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = full_cache(3);
        c.access(0); // 0 is now most recent; 1 is LRU
        assert_eq!(c.evict_lru(), Some((1, B)));
        assert_eq!(c.evict_lru(), Some((2, B)));
        assert_eq!(c.evict_lru(), Some((0, B)));
        assert_eq!(c.evict_lru(), None);
    }

    #[test]
    fn needed_for_and_insert_guard() {
        let mut c = BlockCache::new(2 * B);
        c.insert(0, B);
        assert_eq!(c.needed_for(B), 0);
        c.insert(1, B);
        assert_eq!(c.needed_for(B), B);
    }

    #[test]
    #[should_panic(expected = "evict before inserting")]
    fn overfull_insert_panics() {
        let mut c = BlockCache::new(B);
        c.insert(0, B);
        c.insert(1, B);
    }

    #[test]
    fn evict_bytes_frees_enough() {
        let mut c = full_cache(8);
        let freed = c.evict_bytes(3 * B - 1);
        assert_eq!(freed, 3 * B, "whole blocks only");
        assert_eq!(c.len(), 5);
        assert_eq!(c.used(), 5 * B);
    }

    #[test]
    fn evict_fraction_rounds_up() {
        let mut c = full_cache(8);
        let freed = c.evict_fraction(1.0 / 8.0);
        assert_eq!(freed, B);
        assert_eq!(c.len(), 7);
        // 1/8 of 7 blocks rounds up to 1.
        c.evict_fraction(1.0 / 8.0);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn evict_fraction_of_empty_is_zero() {
        let mut c = BlockCache::new(4 * B);
        assert_eq!(c.evict_fraction(0.5), 0);
    }

    #[test]
    fn peak_bytes_high_water_mark() {
        let mut c = BlockCache::new(4 * B);
        c.insert(0, B);
        c.insert(1, B);
        c.evict_lru();
        assert_eq!(c.stats.peak_bytes, 2 * B);
        assert_eq!(c.used(), B);
    }

    #[test]
    fn clear_empties() {
        let mut c = full_cache(4);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
    }
}
