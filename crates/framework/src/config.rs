//! Spark configuration surface (the paper's tuning knobs).

use m3_core::RateCurve;
use m3_sim::units::MIB;
use serde::{Deserialize, Serialize};

/// The Spark parameters the paper tunes in the Oracle-with-Spark setting:
/// `spark.memory.fraction` and `spark.memory.storageFraction` (§7.1.2),
/// plus the block size of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparkConfig {
    /// `spark.memory.fraction`: share of the heap usable by Spark's unified
    /// memory pool (default 0.6 — "Spark will not use more than 60% of the
    /// heap for storage space", §7.2).
    pub memory_fraction: f64,
    /// `spark.memory.storageFraction`: share of the pool protected for
    /// storage against execution borrowing (default 0.5).
    pub storage_fraction: f64,
    /// Size of one cached block (HDFS default 128 MiB).
    pub block_size: u64,
    /// Fraction of blocks evicted (LRU) on an M3 high-threshold signal
    /// (the paper's modification evicts ⅛).
    pub high_evict_fraction: f64,
    /// If true, the block cache is effectively unbounded and growth is
    /// governed by M3 signals (the paper's Spark modification).
    pub m3_mode: bool,
    /// Ablation switch: reclaim bottom-up (JVM GC *before* Spark evicts) on
    /// a high signal — the uncoordinated ordering of §2.2 Problem 3. The
    /// GC cycle then misses the garbage the eviction would have created.
    pub gc_before_evict: bool,
    /// Allow-rate recovery curve for the adaptive allocation protocol
    /// (footnote 4: the paper evaluated alternatives and kept linear).
    pub rate_curve: RateCurve,
}

impl Default for SparkConfig {
    fn default() -> Self {
        SparkConfig {
            memory_fraction: 0.6,
            storage_fraction: 0.5,
            block_size: 128 * MIB,
            high_evict_fraction: 1.0 / 8.0,
            m3_mode: false,
            gc_before_evict: false,
            rate_curve: RateCurve::Linear,
        }
    }
}

impl SparkConfig {
    /// The paper's M3-modified Spark (unbounded cache, ⅛ eviction).
    pub fn m3() -> Self {
        SparkConfig {
            m3_mode: true,
            ..SparkConfig::default()
        }
    }

    /// The block-cache capacity for a given executor heap.
    ///
    /// Model: the unified pool is `memory_fraction × heap`; storage holds
    /// its protected share plus roughly half of the execution share when
    /// execution is idle, so the effective storage capacity is
    /// `pool × (storage_fraction + (1 − storage_fraction) / 2)`. With the
    /// defaults this is 45 % of the heap, and raising either knob raises
    /// capacity — matching the direction (not the exact accounting) of
    /// Spark's unified memory manager.
    pub fn storage_capacity(&self, heap: u64) -> u64 {
        if self.m3_mode {
            return u64::MAX / 2;
        }
        let pool = heap as f64 * self.memory_fraction;
        let share = self.storage_fraction + (1.0 - self.storage_fraction) / 2.0;
        (pool * share) as u64
    }

    /// Execution memory guaranteed to tasks: the unified pool minus the
    /// storage-protected share, `heap × memory_fraction × (1 −
    /// storage_fraction)`. Raising either storage knob shrinks this — the
    /// reason Spark "recommends leaving these values at their defaults, as
    /// changing them can have unexpected effects on performance" (§7.1.2).
    pub fn execution_capacity(&self, heap: u64) -> u64 {
        if self.m3_mode {
            return u64::MAX / 2;
        }
        (heap as f64 * self.memory_fraction * (1.0 - self.storage_fraction)) as u64
    }

    /// Compute slow-down factor for a job needing `exec_demand` bytes of
    /// execution memory: short execution memory means spilling and extra
    /// (de)serialization on every task.
    pub fn execution_penalty(&self, heap: u64, exec_demand: u64) -> f64 {
        let cap = self.execution_capacity(heap);
        if exec_demand == 0 || cap >= exec_demand {
            return 1.0;
        }
        if cap == 0 {
            return 4.0;
        }
        let shortfall = exec_demand as f64 / cap as f64 - 1.0;
        1.0 + (2.0 * shortfall).min(3.0)
    }

    /// Validates ranges.
    ///
    /// # Panics
    ///
    /// Panics if fractions are outside `[0, 1]` or the block size is zero.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.memory_fraction),
            "memory.fraction in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.storage_fraction),
            "storageFraction in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.high_evict_fraction),
            "evict fraction in [0,1]"
        );
        assert!(self.block_size > 0, "block size must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_sim::units::GIB;

    #[test]
    fn defaults_match_spark() {
        let c = SparkConfig::default();
        assert!((c.memory_fraction - 0.6).abs() < 1e-12);
        assert!((c.storage_fraction - 0.5).abs() < 1e-12);
        assert_eq!(c.block_size, 128 * MIB);
        assert!((c.high_evict_fraction - 0.125).abs() < 1e-12);
        c.validate();
    }

    #[test]
    fn capacity_grows_with_heap_and_knobs() {
        let c = SparkConfig::default();
        assert!(c.storage_capacity(32 * GIB) > c.storage_capacity(16 * GIB));
        let tuned = SparkConfig {
            memory_fraction: 0.8,
            ..SparkConfig::default()
        };
        assert!(tuned.storage_capacity(16 * GIB) > c.storage_capacity(16 * GIB));
        let protected = SparkConfig {
            storage_fraction: 0.9,
            ..SparkConfig::default()
        };
        assert!(protected.storage_capacity(16 * GIB) > c.storage_capacity(16 * GIB));
    }

    #[test]
    fn default_capacity_is_45_percent_of_heap() {
        let c = SparkConfig::default();
        let cap = c.storage_capacity(10 * GIB);
        assert!((cap as f64 / (10 * GIB) as f64 - 0.45).abs() < 1e-9);
    }

    #[test]
    fn m3_mode_is_effectively_unbounded() {
        let c = SparkConfig::m3();
        assert!(c.storage_capacity(GIB) > 1000 * GIB);
    }

    #[test]
    fn execution_penalty_prices_the_knobs() {
        let default = SparkConfig::default();
        // Ample execution memory: no penalty.
        assert_eq!(default.execution_penalty(16 * GIB, 2 * GIB), 1.0);
        // Greedy storage tuning starves execution: penalty kicks in.
        let greedy = SparkConfig {
            memory_fraction: 0.9,
            storage_fraction: 0.9,
            ..SparkConfig::default()
        };
        assert!(greedy.execution_penalty(16 * GIB, 4 * GIB) > 1.5);
        // The penalty is capped.
        assert!(greedy.execution_penalty(GIB, 64 * GIB) <= 4.0);
        // Zero demand is free; M3 mode is unconstrained.
        assert_eq!(greedy.execution_penalty(GIB, 0), 1.0);
        assert_eq!(SparkConfig::m3().execution_penalty(GIB, 64 * GIB), 1.0);
    }

    #[test]
    fn execution_capacity_shrinks_with_storage_fraction() {
        let base = SparkConfig::default();
        let protected = SparkConfig {
            storage_fraction: 0.9,
            ..SparkConfig::default()
        };
        assert!(protected.execution_capacity(16 * GIB) < base.execution_capacity(16 * GIB));
    }

    #[test]
    #[should_panic(expected = "memory.fraction")]
    fn validate_rejects_bad_fraction() {
        SparkConfig {
            memory_fraction: 1.5,
            ..SparkConfig::default()
        }
        .validate();
    }
}
