//! Analytics job descriptions (the HiBench workloads of §7.1.1).
//!
//! A job makes `iterations` passes over a per-node *working set* of cached
//! blocks. Each block visit costs compute time; a block absent from the
//! cache additionally costs a disk read (cold on the first pass, a
//! *capacity miss* afterwards — the paper's "Spark MM" time). Processing a
//! block also churns transient allocation through the JVM, which is where
//! the GC-time elasticity comes from.
//!
//! The parameters are per-node: the paper's cluster-wide inputs (89.8 GB
//! k-means, 5.7 GB PageRank, 1.8 GB n-weight) divide over 8 workers, and
//! deserialized in-memory working sets are a job-specific factor larger than
//! the on-disk input (graph expansions for PageRank/n-weight).

use serde::{Deserialize, Serialize};

/// Which HiBench benchmark a job models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobKind {
    /// `HiBench` k-means: large input, moderate churn.
    KMeans,
    /// `HiBench` PageRank: smaller input, large in-memory expansion,
    /// heavy shuffle churn.
    PageRank,
    /// `HiBench` n-weight: small input, very large intermediate data;
    /// cannot complete under the 16-GB default heap (§7.2).
    NWeight,
}

impl JobKind {
    /// One-letter code used in workload names (W/P/M in Fig. 5; C is the
    /// cache and lives in `m3-cache`).
    pub fn code(self) -> char {
        match self {
            JobKind::KMeans => 'M',
            JobKind::PageRank => 'P',
            JobKind::NWeight => 'W',
        }
    }
}

/// Per-node description of an analytics job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Which benchmark this is.
    pub kind: JobKind,
    /// Human-readable name.
    pub name: String,
    /// Per-node on-disk input bytes (read cold on the first pass).
    pub input_bytes: u64,
    /// Per-node in-memory working set: the bytes the job would cache given
    /// unlimited storage.
    pub working_set: u64,
    /// Number of passes over the working set.
    pub iterations: u32,
    /// Compute time per cached-block visit, milliseconds (absorbs the
    /// 5-core task parallelism of the paper's setup).
    pub compute_ms_per_block: u64,
    /// Transient allocation churned through the JVM per block visit, bytes.
    pub churn_per_block: u64,
    /// Minimum executor heap for the job to run at all (execution memory
    /// floor); below this, stock Spark fails the job. Irrelevant under M3,
    /// whose heap ceiling is effectively unbounded.
    pub min_heap: u64,
    /// Fraction of churned bytes surviving a young collection — a job
    /// property (shuffle-heavy PageRank/n-weight promote far more than
    /// k-means), applied to the executor's JVM configuration.
    pub churn_survival: f64,
    /// Execution memory the job's tasks need to run without spilling
    /// (shuffle buffers, aggregation hash maps).
    pub exec_demand: u64,
}

impl JobSpec {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the working set or iteration count is zero.
    pub fn validate(&self) {
        assert!(self.working_set > 0, "working set must be positive");
        assert!(self.iterations > 0, "iterations must be positive");
        assert!(
            self.compute_ms_per_block > 0,
            "compute cost must be positive"
        );
    }

    /// Number of cache blocks in the working set for the given block size.
    pub fn num_blocks(&self, block_size: u64) -> u32 {
        self.working_set.div_ceil(block_size).max(1) as u32
    }

    /// Total block visits over the whole job.
    pub fn total_visits(&self, block_size: u64) -> u64 {
        u64::from(self.num_blocks(block_size)) * u64::from(self.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_sim::units::{GIB, MIB};

    fn spec() -> JobSpec {
        JobSpec {
            kind: JobKind::KMeans,
            name: "kmeans".into(),
            input_bytes: 11 * GIB,
            working_set: 12 * GIB,
            iterations: 8,
            compute_ms_per_block: 1000,
            churn_per_block: 256 * MIB,
            min_heap: 4 * GIB,
            churn_survival: 0.08,
            exec_demand: 2 * GIB,
        }
    }

    #[test]
    fn codes_match_figure_5() {
        assert_eq!(JobKind::KMeans.code(), 'M');
        assert_eq!(JobKind::PageRank.code(), 'P');
        assert_eq!(JobKind::NWeight.code(), 'W');
    }

    #[test]
    fn block_math() {
        let s = spec();
        assert_eq!(s.num_blocks(128 * MIB), 96);
        assert_eq!(s.total_visits(128 * MIB), 96 * 8);
        s.validate();
    }

    #[test]
    fn tiny_working_set_still_one_block() {
        let mut s = spec();
        s.working_set = 1;
        assert_eq!(s.num_blocks(128 * MIB), 1);
    }

    #[test]
    #[should_panic(expected = "iterations")]
    fn zero_iterations_rejected() {
        let mut s = spec();
        s.iterations = 0;
        s.validate();
    }
}
