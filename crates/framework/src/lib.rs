//! A Spark-like elastic analytics framework substrate.
//!
//! The paper's data-analytics stack is Spark on the JVM on Linux. Spark is
//! designed to process data much larger than memory: input is partitioned
//! into blocks and a subset is kept in an in-memory cache; a capacity miss
//! evicts via LRU and later re-reads (or recomputes) the block from disk
//! (§2.1). Its elasticity — the wide heap-size range over which performance
//! keeps improving in Fig. 1 — comes from two sources modelled here:
//!
//! 1. **block-cache capacity misses** (the "Spark MM" bars): a smaller heap
//!    means a smaller block cache, more evictions, and more disk re-reads;
//! 2. **GC pauses** (via [`m3_runtime::Jvm`]): a smaller heap means more
//!    frequent collections.
//!
//! Under M3 (§6, "Spark modifications"): the block cache is set to a very
//! large size, so Spark keeps adding blocks until M3's signals limit it; on
//! a high threshold signal it evicts ⅛ of its blocks with LRU and then
//! calls down into the JVM for a mixed collection; on a low signal it only
//! calls down for a young collection. Allocation throttling (the adaptive
//! allocation protocol) runs at the Spark layer, where allocations
//! originate.

pub mod cache;
pub mod config;
pub mod hdfs;
pub mod job;
pub mod spark;

pub use cache::BlockCache;
pub use config::SparkConfig;
pub use hdfs::HdfsInput;
pub use job::{JobKind, JobSpec};
pub use spark::{SparkApp, SparkStats, TickOutcome};
