//! The Spark executor process driver.
//!
//! One [`SparkApp`] models the single multi-threaded executor the paper's
//! Spark spawns per node (§7.1): it makes iterative passes over its job's
//! working set, consulting the block cache for each block, reading misses
//! from disk, churning transient allocation through the JVM, and — under
//! M3 — handling threshold signals per Table 1 and throttling growth with
//! the adaptive allocation protocol.
//!
//! Time accounting is the *debt* pattern used by every app driver in this
//! workspace: each piece of work (compute, disk read, GC pause, eviction
//! bookkeeping) adds to a debt balance that the world loop pays down with
//! tick budgets; the process finishes when its last block is processed and
//! its debt is paid.

use m3_core::{
    AdaptiveAllocator, M3Participant, PacketBucket, PacketKind, PacketOutcome, ReclaimScheduler,
    SchedulerConfig, SignalOutcome, ThresholdSignal,
};
use m3_os::{DiskModel, Kernel, Pid};
use m3_runtime::{Jvm, JvmConfig, RuntimeError};
use m3_sim::clock::{SimDuration, SimTime};
use m3_sim::rng::SimRng;
use m3_sim::trace::{EvictReason, TraceData};
use serde::{Deserialize, Serialize};

use crate::cache::BlockCache;
use crate::config::SparkConfig;
use crate::hdfs::HdfsInput;
use crate::job::JobSpec;

/// Bookkeeping cost of evicting one block from the cache.
const EVICT_MS_PER_BLOCK: u64 = 5;

/// `NUM_epochs` for the Spark stack (§4.2: "We set this value to 1 in
/// Spark ... because the Spark stack takes longer to reclaim memory").
pub const SPARK_NUM_EPOCHS: u32 = 1;

/// What one tick accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickOutcome {
    /// Simulated time actually consumed (≤ the offered budget).
    pub consumed: SimDuration,
    /// True once the job is complete (or failed) and all debt is paid.
    pub finished: bool,
}

/// Cumulative per-job statistics (the stacked bars of Fig. 1).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SparkStats {
    /// Pure compute time over cached blocks.
    pub compute: SimDuration,
    /// Time handling block-cache capacity misses: evictions plus re-reads
    /// (the paper's "Spark MM" bars).
    pub spark_mm: SimDuration,
    /// First-pass cold input reads (counted as runtime, not MM).
    pub cold_reads: SimDuration,
    /// Allocations delayed by the adaptive protocol.
    pub delayed_allocs: u64,
    /// Block visits processed.
    pub visits: u64,
}

/// A Spark executor process.
#[derive(Debug)]
pub struct SparkApp {
    cfg: SparkConfig,
    job: JobSpec,
    /// Compute slow-down from execution-memory shortfall (1.0 = none).
    exec_penalty: f64,
    jvm: Jvm,
    cache: BlockCache,
    input: HdfsInput,
    allocator: Option<AdaptiveAllocator>,
    iter: u32,
    next_block: u32,
    /// Visit order for the current pass. Spark's task scheduler does not
    /// visit partitions in a fixed sequence; a per-pass shuffle avoids the
    /// sequential-scan LRU pathology (all-miss below capacity, all-hit
    /// above) and yields the smooth capacity curve of Fig. 1.
    order: Vec<u32>,
    rng: SimRng,
    /// Blocks ever loaded at least once (distinguishes cold from capacity
    /// misses).
    ever_loaded: Vec<bool>,
    debt: SimDuration,
    finished: bool,
    failed: bool,
    /// Work-packet scheduler tunables for signal handling.
    sched: SchedulerConfig,
    /// Per-job statistics.
    pub stats: SparkStats,
}

impl SparkApp {
    /// Creates an executor for `job` in process `pid`.
    ///
    /// Stock executors whose heap is below the job's execution-memory floor
    /// fail immediately (the paper's "nine of the twelve workloads cannot
    /// even run" under the Default setting).
    pub fn new(pid: Pid, jvm_cfg: JvmConfig, cfg: SparkConfig, job: JobSpec) -> Self {
        cfg.validate();
        job.validate();
        // The survivor profile is a property of the job's data lifetimes.
        let jvm_cfg = JvmConfig {
            survival_rate: job.churn_survival,
            ..jvm_cfg
        };
        let jvm = Jvm::new(pid, jvm_cfg);
        let cache = BlockCache::new(cfg.storage_capacity(jvm_cfg.max_heap));
        let num_blocks = job.num_blocks(cfg.block_size);
        let failed = !cfg.m3_mode && jvm_cfg.max_heap < job.min_heap;
        let allocator = cfg
            .m3_mode
            .then(|| AdaptiveAllocator::with_curve(SPARK_NUM_EPOCHS, cfg.rate_curve));
        let input = HdfsInput::new(job.input_bytes.max(1), cfg.block_size);
        let exec_penalty = cfg.execution_penalty(jvm_cfg.max_heap, job.exec_demand);
        let mut rng = SimRng::new(0x5AA5_0FF1 ^ pid ^ u64::from(num_blocks));
        let mut order: Vec<u32> = (0..num_blocks).collect();
        rng.shuffle(&mut order);
        SparkApp {
            cfg,
            exec_penalty,
            order,
            rng,
            jvm,
            cache,
            input,
            allocator,
            iter: 0,
            next_block: 0,
            ever_loaded: vec![false; num_blocks as usize],
            debt: SimDuration::ZERO,
            finished: failed,
            failed,
            sched: SchedulerConfig::default(),
            stats: SparkStats::default(),
            job,
        }
    }

    /// Overrides the work-packet scheduler configuration (worker count,
    /// bucket-order ablation).
    pub fn with_scheduler(mut self, sched: SchedulerConfig) -> Self {
        self.sched = sched;
        self
    }

    /// Re-seeds the per-pass visit order (used to give each cluster node
    /// its own task-scheduling history).
    pub fn with_seed(mut self, salt: u64) -> Self {
        self.rng = SimRng::new(0x5AA5_0FF1 ^ salt ^ self.jvm.pid());
        self.rng.shuffle(&mut self.order);
        self
    }

    /// The job being run.
    pub fn job(&self) -> &JobSpec {
        &self.job
    }

    /// The underlying JVM (for GC statistics and memory inspection).
    pub fn jvm(&self) -> &Jvm {
        &self.jvm
    }

    /// The block cache (for hit/miss statistics).
    pub fn cache(&self) -> &BlockCache {
        &self.cache
    }

    /// True if the job failed to run (insufficient static heap).
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// True once all passes are processed (debt may still be outstanding).
    fn work_done(&self) -> bool {
        self.iter >= self.job.iterations
    }

    /// Fraction of the job completed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        let total = self.job.total_visits(self.cfg.block_size);
        if total == 0 {
            return 1.0;
        }
        (self.stats.visits as f64 / total as f64).min(1.0)
    }

    /// Runs the executor for up to `budget` of simulated time.
    ///
    /// `readers` is the number of processes concurrently hitting the shared
    /// disk this tick (for the contention model).
    pub fn tick(
        &mut self,
        os: &mut Kernel,
        disk: &DiskModel,
        now: SimTime,
        budget: SimDuration,
        readers: usize,
    ) -> TickOutcome {
        if self.finished {
            return TickOutcome {
                consumed: SimDuration::ZERO,
                finished: true,
            };
        }
        let mut remaining = budget;
        // Pay outstanding debt first.
        let pay = self.debt.min(remaining);
        self.debt = self.debt - pay;
        remaining = remaining - pay;

        while !remaining.is_zero() && !self.work_done() {
            let cost = self.process_block(os, disk, now, readers);
            if cost <= remaining {
                remaining = remaining - cost;
            } else {
                self.debt = cost - remaining;
                remaining = SimDuration::ZERO;
            }
        }

        if self.work_done() && self.debt.is_zero() {
            self.finished = true;
            self.jvm.shutdown(os);
        }
        TickOutcome {
            consumed: budget - remaining,
            finished: self.finished,
        }
    }

    /// Adds externally incurred time (e.g. a signal handler's duration) to
    /// the process's debt.
    pub fn add_debt(&mut self, d: SimDuration) {
        self.debt += d;
    }

    /// Processes one block visit, returning its time cost.
    fn process_block(
        &mut self,
        os: &mut Kernel,
        disk: &DiskModel,
        now: SimTime,
        readers: usize,
    ) -> SimDuration {
        let id = self.order[self.next_block as usize];
        let mut cost = SimDuration::ZERO;
        let hit = self.cache.access(id);
        if !hit {
            let cold = !self.ever_loaded[id as usize];
            let read = if cold {
                // First materialization: read this block's share of the
                // on-disk input (the in-memory block is usually larger than
                // its input slice — graph/feature expansion).
                let num = u64::from(self.job.num_blocks(self.cfg.block_size));
                let input_share = self.input.bytes / num.max(1);
                disk.read_time(input_share, readers)
            } else {
                // A capacity miss: this block was evicted earlier and the
                // whole cached representation is re-read/recomputed — the
                // paper's "Spark MM" time (Fig. 1's back-slash bars).
                disk.read_time(self.effective_block_bytes(id), readers)
            };
            if cold {
                self.stats.cold_reads += read;
                self.ever_loaded[id as usize] = true;
            } else {
                self.stats.spark_mm += read;
            }
            cost += read;
            cost += self.insert_block(os, id, now);
        }
        let compute =
            SimDuration::from_millis(self.job.compute_ms_per_block).mul_f64(self.exec_penalty);
        cost += compute;
        self.stats.compute += compute;

        // Transient churn through the JVM (task data, shuffle buffers).
        // These are `alloc()` calls too: under the adaptive protocol a
        // delayed transient allocation reclaims its own space first (a
        // young collection) instead of growing the heap (§4.2).
        if self.job.churn_per_block > 0 {
            let delayed = self.gate_alloc(os, now);
            if delayed {
                self.stats.delayed_allocs += 1;
                let gc = self.jvm.young_gc(os);
                cost += gc.pause;
            }
            match self.jvm.alloc_transient(os, self.job.churn_per_block) {
                Ok(c) => cost += c.pause,
                Err(RuntimeError::HeapExhausted) => {
                    // Make execution room by shrinking the cache.
                    cost += self.evict_blocks_for(os, self.job.churn_per_block, true);
                    if let Ok(c) = self.jvm.alloc_transient(os, self.job.churn_per_block) {
                        cost += c.pause;
                    } else {
                        self.fail(os);
                        return cost;
                    }
                }
            }
        }

        self.stats.visits += 1;
        self.next_block += 1;
        if self.next_block >= self.job.num_blocks(self.cfg.block_size) {
            self.next_block = 0;
            self.iter += 1;
            self.rng.shuffle(&mut self.order);
        }
        cost
    }

    /// Runs one `alloc()` through the adaptive gate. The decision is traced
    /// whenever the throttle is engaged (rate below 100 %) so the oracle can
    /// replay the ⌊1/r⌋ admission pattern against the §4.2 formula.
    fn gate_alloc(&mut self, os: &mut Kernel, now: SimTime) -> bool {
        let Some(a) = self.allocator.as_mut() else {
            return false;
        };
        let snap = a.gate_snapshot(now);
        let delayed = a.should_delay(now);
        if snap.rate < 1.0 {
            os.record_trace_with(self.jvm.pid(), || TraceData::AllocGate {
                delayed,
                rate: snap.rate,
                elapsed_ms: snap.elapsed_ms,
                epoch_ms: snap.epoch_ms,
                num_epochs: snap.num_epochs,
                curve: snap.curve.to_string(),
            });
        }
        delayed
    }

    /// Bytes of the cached representation of block `id` (uniform blocks;
    /// the tail block of the *input* may be short but the in-memory block
    /// is the unit of caching).
    fn effective_block_bytes(&self, _id: u32) -> u64 {
        self.cfg.block_size
    }

    /// Inserts a freshly read block into the cache, applying either stock
    /// capacity eviction or the M3 delayed-allocation protocol.
    fn insert_block(&mut self, os: &mut Kernel, id: u32, now: SimTime) -> SimDuration {
        let bytes = self.effective_block_bytes(id);
        let mut cost = SimDuration::ZERO;

        let delayed = self.gate_alloc(os, now);
        if delayed {
            self.stats.delayed_allocs += 1;
            // §4.2: a delayed allocation first evicts enough of the
            // application's own data to satisfy itself, replacing it
            // in place — usage does not grow.
            let needed = bytes.min(self.cache.used());
            if needed > 0 {
                let before = self.cache.len();
                let freed = self.cache.evict_bytes(needed);
                let evicted_blocks = (before - self.cache.len()) as u64;
                os.record_trace_with(self.jvm.pid(), || TraceData::EvictBlocks {
                    before: before as u64,
                    evicted: evicted_blocks,
                    bytes: freed,
                    reason: EvictReason::AdmissionDelay,
                });
                cost += SimDuration::from_millis(evicted_blocks * EVICT_MS_PER_BLOCK);
                self.stats.spark_mm +=
                    SimDuration::from_millis(evicted_blocks * EVICT_MS_PER_BLOCK);
                match self.jvm.replace_pinned(os, freed, bytes) {
                    Ok(c) => cost += c.pause,
                    Err(RuntimeError::HeapExhausted) => {
                        self.fail(os);
                        return cost;
                    }
                }
                self.cache.insert(id, bytes);
                return cost;
            }
        }

        // Stock capacity limit (a no-op under M3's unbounded cache).
        let need = self.cache.needed_for(bytes);
        if need > 0 {
            cost += self.evict_blocks_for_cache(os, need);
        }
        match self.jvm.alloc_pinned(os, bytes) {
            Ok(c) => cost += c.pause,
            Err(RuntimeError::HeapExhausted) => {
                // At the static heap maximum: evict and replace in place.
                cost += self.evict_blocks_for(os, bytes, false);
                let freed = bytes.min(self.jvm.pinned());
                match self.jvm.replace_pinned(os, freed, bytes) {
                    Ok(c) => cost += c.pause,
                    Err(RuntimeError::HeapExhausted) => {
                        self.fail(os);
                        return cost;
                    }
                }
            }
        }
        self.cache.insert(id, bytes);
        cost
    }

    /// Evicts cache blocks totalling at least `need` bytes, marking the
    /// JVM data dead. `for_execution` distinguishes eviction forced by
    /// transient allocation from block-replacement eviction.
    fn evict_blocks_for(&mut self, os: &mut Kernel, need: u64, for_execution: bool) -> SimDuration {
        let before = self.cache.len();
        let freed = self.cache.evict_bytes(need);
        let evicted = (before - self.cache.len()) as u64;
        os.record_trace_with(self.jvm.pid(), || TraceData::EvictBlocks {
            before: before as u64,
            evicted,
            bytes: freed,
            reason: EvictReason::Capacity,
        });
        if !for_execution {
            // The replacement path reuses the space in place; only mark
            // dead what replace_pinned will not reuse.
            self.jvm.free_pinned(freed.saturating_sub(need));
        } else {
            self.jvm.free_pinned(freed);
        }
        let d = SimDuration::from_millis(evicted * EVICT_MS_PER_BLOCK);
        self.stats.spark_mm += d;
        d
    }

    /// Capacity-eviction path (stock): evicted data becomes JVM garbage.
    fn evict_blocks_for_cache(&mut self, os: &mut Kernel, need: u64) -> SimDuration {
        let before = self.cache.len();
        let freed = self.cache.evict_bytes(need);
        let evicted = (before - self.cache.len()) as u64;
        os.record_trace_with(self.jvm.pid(), || TraceData::EvictBlocks {
            before: before as u64,
            evicted,
            bytes: freed,
            reason: EvictReason::Capacity,
        });
        self.jvm.free_pinned(freed);
        let d = SimDuration::from_millis(evicted * EVICT_MS_PER_BLOCK);
        self.stats.spark_mm += d;
        d
    }

    /// Marks the job failed and releases its memory.
    fn fail(&mut self, os: &mut Kernel) {
        self.failed = true;
        self.finished = true;
        self.cache.clear();
        self.jvm.shutdown(os);
    }

    /// The High-signal eviction work packet: drops ⅛ of the cached blocks
    /// (Table 1) and marks their bytes dead in the JVM.
    fn evict_high_packet(&mut self, os: &mut Kernel) -> PacketOutcome {
        let before = self.cache.len();
        let freed = self.cache.evict_fraction(self.cfg.high_evict_fraction);
        let evicted = (before - self.cache.len()) as u64;
        os.record_trace_with(self.jvm.pid(), || TraceData::EvictBlocks {
            before: before as u64,
            evicted,
            bytes: freed,
            reason: EvictReason::HighSignal,
        });
        self.jvm.free_pinned(freed);
        let cost = SimDuration::from_millis(evicted * EVICT_MS_PER_BLOCK);
        self.stats.spark_mm += cost;
        PacketOutcome::freed(freed, cost)
    }

    /// Pure estimate of the bytes [`SparkApp::evict_high_packet`] will free.
    fn evict_high_estimate(&self) -> u64 {
        (self.cache.used() as f64 * self.cfg.high_evict_fraction) as u64
    }
}

impl M3Participant for SparkApp {
    fn pid(&self) -> Pid {
        self.jvm.pid()
    }

    /// Table 1, Spark row — low signal: "call down to JVM" (young GC);
    /// high signal: "evict blocks + call JVM" (⅛ LRU + mixed GC), then run
    /// the adaptive allocation protocol.
    fn handle_signal(
        &mut self,
        sig: ThresholdSignal,
        os: &mut Kernel,
        now: SimTime,
    ) -> SignalOutcome {
        if self.finished {
            return SignalOutcome::default();
        }
        let mut sched = ReclaimScheduler::new(self.jvm.pid(), self.sched);
        let young_cost = |app: &SparkApp| app.jvm.young_collect_estimate();
        let young_run = |app: &mut SparkApp, os: &mut Kernel| {
            let gc = app.jvm.young_collect(os);
            PacketOutcome::freed(gc.reclaimed, gc.pause)
        };
        let madv_cost = |app: &SparkApp| app.jvm.releasable();
        let madv_run = |app: &mut SparkApp, os: &mut Kernel| {
            PacketOutcome::released(app.jvm.release_to_os(os))
        };
        match sig {
            ThresholdSignal::Low => {
                // Table 1 low: call down to the JVM only.
                let gc = sched.add_costed(PacketKind::GcYoung, &[], young_cost, young_run);
                sched.add_costed(PacketKind::Madvise, &[gc], madv_cost, madv_run);
                sched.drain(self, os).outcome
            }
            ThresholdSignal::High => {
                if let Some(a) = self.allocator.as_mut() {
                    a.on_high_signal(now);
                }
                let evict_cost = |app: &SparkApp| app.evict_high_estimate();
                let evict_run = |app: &mut SparkApp, os: &mut Kernel| app.evict_high_packet(os);
                let old_cost = |app: &SparkApp| app.jvm.old_collect_estimate();
                let old_run = |app: &mut SparkApp, os: &mut Kernel| {
                    let gc = app.jvm.old_collect(os);
                    PacketOutcome::freed(gc.reclaimed, gc.pause)
                };
                if self.cfg.gc_before_evict {
                    // Ablation: the uncoordinated bottom-up order collects
                    // (and releases) before the upper layer has freed
                    // anything (§2.2 Problem 3) — this cycle's yield is
                    // wasted. Expressed by swapping the bucket assignments.
                    let y = sched.add_in(
                        PacketKind::GcYoung,
                        PacketBucket::Prepare,
                        &[],
                        young_cost,
                        young_run,
                    );
                    let o = sched.add_in(
                        PacketKind::GcOld,
                        PacketBucket::Prepare,
                        &[y],
                        old_cost,
                        old_run,
                    );
                    sched.add_in(
                        PacketKind::Madvise,
                        PacketBucket::Collect,
                        &[o],
                        madv_cost,
                        madv_run,
                    );
                    sched.add_in(
                        PacketKind::EvictBlocks,
                        PacketBucket::Release,
                        &[],
                        evict_cost,
                        evict_run,
                    );
                } else {
                    // Top-down: evict blocks, then the mixed collection's
                    // two phases, then one batched release.
                    let e = sched.add_costed(PacketKind::EvictBlocks, &[], evict_cost, evict_run);
                    let y = sched.add_costed(PacketKind::GcYoung, &[e], young_cost, young_run);
                    let o = sched.add_costed(PacketKind::GcOld, &[y], old_cost, old_run);
                    sched.add_costed(PacketKind::Madvise, &[o], madv_cost, madv_run);
                }
                let res = sched.drain(self, os);
                if let Some(a) = self.allocator.as_mut() {
                    a.on_reclaim_done(now + res.outcome.duration);
                }
                res.outcome
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_os::KernelConfig;
    use m3_sim::units::{GIB, MIB};

    fn job() -> JobSpec {
        JobSpec {
            kind: crate::job::JobKind::KMeans,
            name: "kmeans".into(),
            input_bytes: 4 * GIB,
            working_set: 4 * GIB,
            iterations: 3,
            compute_ms_per_block: 100,
            churn_per_block: 64 * MIB,
            min_heap: 2 * GIB,
            churn_survival: 0.08,
            exec_demand: GIB,
        }
    }

    fn setup(jvm_cfg: JvmConfig, spark_cfg: SparkConfig) -> (Kernel, DiskModel, SparkApp) {
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("spark");
        let app = SparkApp::new(pid, jvm_cfg, spark_cfg, job());
        (os, DiskModel::hdd_7200rpm(), app)
    }

    fn run_to_completion(os: &mut Kernel, disk: &DiskModel, app: &mut SparkApp) -> SimTime {
        let mut now = SimTime::ZERO;
        let tick = SimDuration::from_millis(100);
        for _ in 0..4_000_000 {
            let out = app.tick(os, disk, now, tick, 1);
            now += tick;
            if out.finished {
                return now;
            }
        }
        panic!("job did not finish");
    }

    #[test]
    fn job_completes_and_releases_memory() {
        let (mut os, disk, mut app) = setup(JvmConfig::stock(8 * GIB), SparkConfig::default());
        let pid = app.pid();
        run_to_completion(&mut os, &disk, &mut app);
        assert!(!app.failed());
        assert_eq!(app.stats.visits, app.job().total_visits(128 * MIB));
        assert_eq!(os.rss(pid), 0, "shutdown must release the heap");
    }

    #[test]
    fn small_heap_is_slower_than_large_heap() {
        // Fig. 1's elasticity end to end: with a 3 GiB heap the 4 GiB
        // working set cannot be cached, so re-reads and GC slow the job.
        let (mut os_s, disk, mut small) = setup(JvmConfig::stock(3 * GIB), SparkConfig::default());
        let t_small = run_to_completion(&mut os_s, &disk, &mut small);
        let (mut os_l, _, mut large) = setup(JvmConfig::stock(12 * GIB), SparkConfig::default());
        let t_large = run_to_completion(&mut os_l, &disk, &mut large);
        assert!(
            t_small > t_large,
            "3GiB heap {} must be slower than 12GiB heap {}",
            t_small,
            t_large
        );
        assert!(small.stats.spark_mm > large.stats.spark_mm);
    }

    #[test]
    fn below_min_heap_fails_immediately() {
        let (mut os, disk, mut app) = setup(JvmConfig::stock(GIB), SparkConfig::default());
        assert!(app.failed());
        let out = app.tick(&mut os, &disk, SimTime::ZERO, SimDuration::from_secs(1), 1);
        assert!(out.finished);
        assert_eq!(out.consumed, SimDuration::ZERO);
    }

    #[test]
    fn m3_mode_ignores_min_heap() {
        let (_, _, app) = setup(JvmConfig::m3(62 * GIB), SparkConfig::m3());
        assert!(!app.failed());
    }

    #[test]
    fn m3_mode_caches_whole_working_set_without_pressure() {
        let (mut os, disk, mut app) = setup(JvmConfig::m3(62 * GIB), SparkConfig::m3());
        run_to_completion(&mut os, &disk, &mut app);
        // No signals were ever sent, so nothing was evicted: every miss was
        // a cold read, zero capacity misses.
        assert_eq!(app.cache.stats.evicted, 0);
        assert_eq!(app.stats.spark_mm, SimDuration::ZERO);
    }

    #[test]
    fn stock_capacity_forces_evictions() {
        // 4 GiB working set, 3 GiB heap → ~1.35 GiB cache: lots of churn.
        let (mut os, disk, mut app) = setup(JvmConfig::stock(3 * GIB), SparkConfig::default());
        run_to_completion(&mut os, &disk, &mut app);
        assert!(app.cache.stats.evicted > 0);
        assert!(app.stats.spark_mm > SimDuration::ZERO);
    }

    #[test]
    fn low_signal_runs_young_gc_only() {
        let (mut os, _, mut app) = setup(JvmConfig::m3(62 * GIB), SparkConfig::m3());
        // Prime some heap state.
        app.jvm.alloc_transient(&mut os, 100 * MIB).unwrap();
        let blocks_before = app.cache.len();
        let out = app.handle_signal(ThresholdSignal::Low, &mut os, SimTime::from_secs(1));
        assert!(out.duration > SimDuration::ZERO);
        assert_eq!(app.cache.len(), blocks_before, "low signal must not evict");
        assert_eq!(app.jvm.stats.young_count, 1);
        assert_eq!(app.jvm.stats.mixed_count, 0);
    }

    #[test]
    fn high_signal_evicts_eighth_and_mixed_gcs() {
        let (mut os, disk, mut app) = setup(JvmConfig::m3(62 * GIB), SparkConfig::m3());
        // Load the cache fully first.
        let mut now = SimTime::ZERO;
        let tick = SimDuration::from_millis(100);
        while app.cache.len() < 32 {
            app.tick(&mut os, &disk, now, tick, 1);
            now += tick;
        }
        let blocks = app.cache.len();
        let out = app.handle_signal(ThresholdSignal::High, &mut os, now);
        let expected_evicted = (blocks as f64 / 8.0).ceil() as usize;
        assert_eq!(app.cache.len(), blocks - expected_evicted);
        assert!(app.jvm.stats.mixed_count >= 1);
        assert!(
            out.returned_to_os > 0,
            "mixed GC must return evicted bytes to OS"
        );
    }

    #[test]
    fn high_signal_throttles_subsequent_allocation() {
        let (mut os, disk, mut app) = setup(JvmConfig::m3(62 * GIB), SparkConfig::m3());
        let mut now = SimTime::ZERO;
        let tick = SimDuration::from_millis(100);
        while app.cache.len() < 30 {
            app.tick(&mut os, &disk, now, tick, 1);
            now += tick;
        }
        app.handle_signal(ThresholdSignal::High, &mut os, now);
        let before = app.stats.delayed_allocs;
        // Immediately after the signal the allow rate is ~0: the next
        // misses must be delayed (evict-and-replace instead of growth).
        // Ticking without advancing `now` keeps the rate pinned at zero, so
        // every re-insert of an evicted block must take the delayed path.
        for _ in 0..200 {
            let out = app.tick(&mut os, &disk, now, tick, 1);
            if out.finished {
                break;
            }
        }
        assert!(
            app.stats.delayed_allocs > before,
            "allocations must be delayed"
        );
    }

    #[test]
    fn bottom_up_order_reclaims_less_per_signal() {
        // §2.2 Problem 3: collecting before the upper layer evicts wastes
        // the cycle — the evicted blocks stay garbage until the next one.
        let mk = |gc_first: bool| {
            let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
            let pid = os.spawn("spark");
            let cfg = SparkConfig {
                gc_before_evict: gc_first,
                ..SparkConfig::m3()
            };
            let mut app = SparkApp::new(pid, JvmConfig::m3(62 * GIB), cfg, job());
            let disk = DiskModel::hdd_7200rpm();
            let mut now = SimTime::ZERO;
            while app.cache.len() < 30 {
                app.tick(&mut os, &disk, now, SimDuration::from_millis(100), 1);
                now += SimDuration::from_millis(100);
            }
            let out = app.handle_signal(ThresholdSignal::High, &mut os, now);
            out.returned_to_os
        };
        let top_down = mk(false);
        let bottom_up = mk(true);
        assert!(
            top_down > bottom_up,
            "top-down {top_down} must return more than bottom-up {bottom_up}"
        );
    }

    #[test]
    fn exec_starved_config_computes_slower() {
        let starved = SparkConfig {
            memory_fraction: 0.9,
            storage_fraction: 0.95,
            ..SparkConfig::default()
        };
        let mut big_job = job();
        big_job.exec_demand = 4 * GIB;
        let mut os = Kernel::new(KernelConfig::with_total(64 * GIB));
        let pid = os.spawn("spark");
        let app = SparkApp::new(pid, JvmConfig::stock(8 * GIB), starved, big_job);
        assert!(app.exec_penalty > 1.0);
    }

    #[test]
    fn signals_after_finish_are_noops() {
        let (mut os, disk, mut app) = setup(JvmConfig::stock(8 * GIB), SparkConfig::default());
        run_to_completion(&mut os, &disk, &mut app);
        let out = app.handle_signal(ThresholdSignal::High, &mut os, SimTime::from_secs(9999));
        assert_eq!(out, SignalOutcome::default());
    }

    #[test]
    fn progress_is_monotone() {
        let (mut os, disk, mut app) = setup(JvmConfig::stock(8 * GIB), SparkConfig::default());
        let mut last = 0.0;
        let mut now = SimTime::ZERO;
        let tick = SimDuration::from_millis(200);
        for _ in 0..100 {
            app.tick(&mut os, &disk, now, tick, 1);
            now += tick;
            let p = app.progress();
            assert!(p >= last);
            last = p;
        }
        assert!(last > 0.0);
    }
}
