//! `m3run` — command-line driver for the M3 reproduction.
//!
//! ```text
//! m3run list
//! m3run run MMW180 [--setting m3|default|oracle|ows] [--nodes N]
//!                  [--phys-gib G] [--json FILE] [--profile]
//! ```
//!
//! Examples:
//!
//! ```text
//! cargo run --release --bin m3run -- list
//! cargo run --release --bin m3run -- run CMW180 --setting m3 --profile
//! cargo run --release --bin m3run -- run MMW180 --setting ows --json out.json
//! cargo run --release --bin m3run -- run CCC480 --setting m3 --nodes 8
//! ```

use m3::prelude::*;
use m3::sim::clock::SimDuration;
use m3::workloads::cluster::run_cluster;
use m3::workloads::scenario::all_scenarios;
use m3::workloads::search::{search_oracle, search_ows, SearchSpace};

fn usage() -> ! {
    eprintln!(
        "usage:\n  m3run list\n  m3run run <WORKLOAD> [--setting m3|default|oracle|ows] \
         [--nodes N] [--phys-gib G] [--json FILE] [--profile]\n\n\
         WORKLOAD is a paper name without the space, e.g. MMW180 or CCC0;\n\
         or letters and delay separately, e.g. 'MMW 180'."
    );
    std::process::exit(2);
}

fn find_scenario(name: &str) -> Option<Scenario> {
    let normalized = name.replace([' ', '-', '_'], "").to_uppercase();
    all_scenarios()
        .into_iter()
        .find(|s| s.name.replace(' ', "") == normalized)
}

fn ascii_profile(profile: &m3::sim::metrics::Profile, cols: usize, max: f64) {
    const GLYPHS: &[u8] = b" .:-=+*#%@";
    for s in &profile.series {
        if s.samples.is_empty() {
            continue;
        }
        let mut row = vec![b' '; cols];
        let t_end = s
            .samples
            .last()
            .expect("non-empty")
            .t
            .as_secs_f64()
            .max(1.0);
        for p in &s.samples {
            let col = ((p.t.as_secs_f64() / t_end) * (cols - 1) as f64) as usize;
            let lvl = ((p.v / max).clamp(0.0, 1.0) * (GLYPHS.len() - 1) as f64) as usize;
            row[col] = GLYPHS[lvl].max(row[col]);
        }
        println!(
            "{:>16} |{}|",
            s.name,
            String::from_utf8(row).expect("ascii")
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:<10} {:>5} {:>12}", "workload", "apps", "worst-case?");
            for s in all_scenarios() {
                println!(
                    "{:<10} {:>5} {:>12}",
                    s.name,
                    s.len(),
                    if s.is_worst_case() { "yes" } else { "" }
                );
            }
            println!("\nsettings: m3 (default), default, oracle, ows");
        }
        Some("run") => run_cmd(&args[1..]),
        _ => usage(),
    }
}

fn run_cmd(args: &[String]) {
    let Some(workload) = args.first() else {
        usage()
    };
    let Some(scenario) = find_scenario(workload) else {
        eprintln!("unknown workload {workload:?}; try `m3run list`");
        std::process::exit(2);
    };

    let mut setting_name = "m3".to_string();
    let mut nodes = 1usize;
    let mut phys_gib = 64u64;
    let mut json_path: Option<String> = None;
    let mut show_profile = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--setting" => setting_name = it.next().unwrap_or_else(|| usage()).clone(),
            "--nodes" => {
                nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--phys-gib" => {
                phys_gib = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--json" => json_path = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--profile" => show_profile = true,
            _ => usage(),
        }
    }

    let mut cfg = MachineConfig::scaled(phys_gib * GIB, true);
    cfg.max_time = SimDuration::from_secs(60_000);
    if !show_profile {
        cfg.sample_period = None;
    }

    let setting = match setting_name.as_str() {
        "m3" => Setting::m3(scenario.len()),
        "default" => Setting::default_for(scenario.len()),
        "oracle" => {
            eprintln!(
                "[m3run] grid-searching the Oracle for {} ...",
                scenario.name
            );
            search_oracle(&scenario, &SearchSpace::paper(), cfg)
        }
        "ows" => {
            eprintln!("[m3run] grid-searching OWS for {} ...", scenario.name);
            search_ows(&scenario, &SearchSpace::paper(), cfg)
        }
        other => {
            eprintln!("unknown setting {other:?} (want m3|default|oracle|ows)");
            std::process::exit(2);
        }
    };

    if nodes > 1 {
        let res = run_cluster(&scenario, &setting, cfg, nodes);
        println!(
            "{} under {} on {} nodes (job completion = slowest node):",
            scenario.name,
            setting.kind.label(),
            nodes
        );
        for (i, rt) in res.app_runtimes_s.iter().enumerate() {
            println!(
                "  app {i}: {}  (node spread {:.0}s)",
                rt.map_or("FAIL".into(), |v| format!("{v:.0}s")),
                res.spread_s[i]
            );
        }
        if let Some(path) = json_path {
            std::fs::write(
                &path,
                serde_json::to_string_pretty(&res).expect("serialise"),
            )
            .expect("write json");
            println!("wrote {path}");
        }
        return;
    }

    let out = run_scenario(&scenario, &setting, cfg);
    println!("{} under {}:", scenario.name, setting.kind.label());
    for a in &out.run.apps {
        let status = if a.failed {
            "FAIL (insufficient static memory)".to_string()
        } else if a.killed {
            "KILLED".to_string()
        } else {
            format!(
                "{:.0}s  (gc {:.0}s, mm {:.0}s, peak {:.1} GiB)",
                a.runtime().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN),
                a.gc_pause.as_secs_f64(),
                a.mm_time.as_secs_f64(),
                a.peak_rss as f64 / GIB as f64
            )
        };
        println!("  {:<8} {}", a.name, status);
    }
    if let Some(stats) = out.run.monitor_stats {
        println!(
            "  monitor: {} polls, {} low, {} high, {} kills",
            stats.polls, stats.low_signals, stats.high_signals, stats.kills
        );
    }
    println!(
        "  mean node usage: {:.1} GiB of {} GiB",
        out.run.mean_rss / GIB as f64,
        phys_gib
    );
    if show_profile {
        println!();
        ascii_profile(&out.run.profile, 72, phys_gib as f64);
    }
    if let Some(path) = json_path {
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&out.run.apps).expect("serialise"),
        )
        .expect("write json");
        println!("wrote {path}");
    }
}
