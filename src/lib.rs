//! M3: end-to-end memory management in elastic system software stacks.
//!
//! A Rust reproduction of Lion, Chiu & Yuan, *EuroSys '21*. This facade
//! crate re-exports the whole workspace under one roof; see `DESIGN.md` for
//! the system inventory and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Quickstart
//!
//! ```
//! use m3::prelude::*;
//!
//! // One simulated 64-GB node with the paper's monitor parameters.
//! let machine = Machine::new(MachineConfig::m3_64gb());
//!
//! // Run the paper's MMW 180 workload (two k-means + n-weight) under M3.
//! let scenario = Scenario::uniform("MMW", 180);
//! let outcome = run_scenario(&scenario, &Setting::m3(3), *machine.config());
//! assert!(outcome.run.all_finished());
//! ```
//!
//! # Layer map
//!
//! | crate | role |
//! |---|---|
//! | [`sim`] | deterministic clock, RNG, event queue, metrics |
//! | [`os`] | simulated kernel: memory accounting, signals, swap, OOM |
//! | [`runtime`] | JVM-like G1 heap, Go-like runtime, native allocators |
//! | [`framework`] | Spark-like jobs, block cache, HDFS/disk model |
//! | [`cache`] | slab key-value caches (Go-Cache, Memcached) |
//! | [`core`] | **the paper's contribution**: monitor, thresholds, Algorithm 1, adaptive allocation |
//! | [`oracle`] | trace-replay conformance checker for the paper's invariants |
//! | [`workloads`] | machine/world loop, the 16 evaluation workloads, settings, search, cluster + fleet scheduler |

pub use m3_cache as cache;
pub use m3_core as core;
pub use m3_framework as framework;
pub use m3_oracle as oracle;
pub use m3_os as os;
pub use m3_runtime as runtime;
pub use m3_sim as sim;
pub use m3_workloads as workloads;

/// The most common imports for driving experiments.
pub mod prelude {
    pub use m3_cache::{TraceWorkload, TrafficPattern};
    pub use m3_core::{
        AdaptiveAllocator, M3Participant, Monitor, MonitorConfig, PressureSummary, SignalOutcome,
        SortOrder, ThresholdSignal, Zone,
    };
    pub use m3_oracle::{FleetOracle, Oracle, Violation};
    pub use m3_os::{DiskModel, Kernel, KernelConfig, Pid, Signal, SignalFaultConfig};
    pub use m3_sim::clock::{SimDuration, SimTime};
    pub use m3_sim::trace::Criticality;
    pub use m3_sim::units::{GIB, KIB, MIB};
    pub use m3_workloads::cluster::{
        run_cluster, ClusterMean, ClusterResult, JobFailure, PAPER_NODES,
    };
    pub use m3_workloads::faults::{
        DegradationReport, FaultKind, FaultPlan, FleetDegradationReport, FleetFaultPlan, NodeCrash,
        PlacementDelay, ProbeFlap,
    };
    pub use m3_workloads::fleet::{
        run_fleet, run_fleet_cached, run_fleet_cached_faulted, run_fleet_faulted_with_workers,
        run_fleet_with_faults, run_fleet_with_workers, FleetConfig, FleetResult, JobOutcome,
        NodeSpec, PlacementPolicy,
    };
    pub use m3_workloads::kvtrace::{
        run_cache_trace, run_cache_trace_cached, CachePolicy, CacheTraceOutcome,
    };
    pub use m3_workloads::machine::{Machine, MachineConfig, RunResult};
    pub use m3_workloads::runner::{
        compare_m3_vs, run_scenario, run_scenario_with_faults, speedup_report,
    };
    pub use m3_workloads::scenario::{
        fleet_canonical, fleet_scale_scenario, mixed_criticality_scenario, AppKind, JobClass,
        Scenario,
    };
    pub use m3_workloads::settings::{AppConfig, Setting, SettingKind};
}
